"""SIMT functional engine.

Executes kernel grids block-by-block with warp-lockstep semantics:

* threads of a warp advance in *rounds*; each round steps every live,
  unblocked lane by one event. Lanes that finished (or wait at a barrier)
  are inactive — the per-round active-lane count yields the paper's *warp
  execution efficiency* metric (Fig. 8).
* each round costs one warp-step plus memory stalls: the round's global
  accesses are coalesced into 128-byte segments and priced through the L2
  model (Fig. 10's DRAM transactions fall out of this path).
* ``__syncthreads`` blocks a warp until every warp of the block arrives.
* DP launches are recorded into the block's trace (with cycle offsets) and
  executed functionally after the block completes or at an explicit
  ``cudaDeviceSynchronize`` — the discrete-event timing model
  (:mod:`repro.sim.timing`) later replays the trace against the SMX
  scheduler for makespan and occupancy.

Blocks of one grid run sequentially (functional determinism); this is
sound for the benchmark codes, whose cross-block interactions are
monotonic atomics or level-synchronized phases (see DESIGN.md §7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..errors import SimulationError
from ..telemetry import span
from .events import ATOM, DEVSYNC, INTR, LAUNCH, LD, ST, SYNC, WSYNC, ThreadCtx
from .memory import DeviceArray

# thread states
_RUNNING = 0
_AT_BARRIER = 1
_DONE = 2
_AT_WARP_BARRIER = 3


@dataclass
class LaunchRecord:
    """A DP child launch observed in a parent block."""

    segment: int
    offset_cycles: int
    child: "KernelInstance"


@dataclass
class BlockTrace:
    """Timing-relevant trace of one executed block."""

    block_idx: int
    num_threads: int
    num_warps: int
    #: cycles of each execution segment (segments are separated by
    #: cudaDeviceSynchronize points, where the parent may be swapped out)
    segments: list[int] = field(default_factory=list)
    launches: list[LaunchRecord] = field(default_factory=list)
    #: total warp-rounds and active-lane-rounds for warp-efficiency
    warp_steps: int = 0
    active_lane_steps: int = 0
    #: warp-cycles spent waiting at __syncthreads for the block's slowest
    #: warp (summed over releases). This is the *load-imbalance* price of
    #: block-wide aggregation barriers: block- and grid-level
    #: consolidation insert a __syncthreads before the designated launch,
    #: so an uneven push workload shows up here (DESIGN.md §10). Measured
    #: only — the lockstep cycle accounting is unchanged.
    barrier_stall_cycles: int = 0

    @property
    def cycles(self) -> int:
        return sum(self.segments)


@dataclass
class KernelInstance:
    """One kernel grid: a host launch or a DP child launch."""

    uid: int
    name: str
    grid: int
    block_dim: int
    args: tuple
    depth: int
    parent_uid: Optional[int] = None
    from_device: bool = False
    blocks: list[BlockTrace] = field(default_factory=list)
    children: list["KernelInstance"] = field(default_factory=list)

    @property
    def total_threads(self) -> int:
        return self.grid * self.block_dim

    def subtree(self):
        yield self
        for child in self.children:
            yield from child.subtree()


class _Warp:
    __slots__ = ("threads", "states", "pending", "cycles", "steps",
                 "active_steps", "ctxs")

    def __init__(self, threads, ctxs):
        self.threads = threads          # list of generators
        self.ctxs = ctxs                # parallel list of ThreadCtx
        self.states = [_RUNNING] * len(threads)
        self.pending = [None] * len(threads)
        self.cycles = 0
        self.steps = 0
        self.active_steps = 0


class FunctionalEngine:
    """Runs kernel instances functionally and produces traces.

    Collaborators:

    ``kernels``          name -> compiled generator function
    ``memory_system``    L2/DRAM accounting (:class:`MemorySystem`)
    ``intrinsic_handler``callable(name, args, ThreadView) -> (value, cycles)
    ``on_launch``        callable(parent_instance, name, grid, block, args)
                         -> KernelInstance (performs depth/config checks)
    """

    def __init__(self, spec, cost, memory_system, kernels: dict,
                 intrinsic_handler: Callable, on_launch: Callable):
        self.spec = spec
        self.cost = cost
        self.mem = memory_system
        self.kernels = kernels
        self.intrinsic_handler = intrinsic_handler
        self.on_launch = on_launch
        #: per-run cap on functionally executed kernel instances
        self.max_instances = 2_000_000
        #: deep-profiling collector (:mod:`repro.perf.collect`); wired by
        #: the Device when profiling is active, else None. Purely
        #: observational — it records counter deltas the engine already
        #: computed and never feeds back into pricing.
        self.profiler = None

    # ------------------------------------------------------------------ API

    def run_instance(self, inst: KernelInstance) -> None:
        """Execute an instance and everything it transitively launches.

        Execution order across the launch forest is FIFO (breadth-first):
        children that are not explicitly joined at a device-sync point run
        after earlier-launched kernels, which mirrors how the hardware's
        grid dispatcher drains the pending queue. (Depth-first draining
        would make recursive claim chains — e.g. BFS-Rec's atomicCAS
        visits — artificially deep and overflow the 24-level DP nesting
        limit that real runs never hit.)
        """
        from collections import deque

        # coarse tracing split: the root kernel's own rounds (including
        # device-synced children, which run inside _consume_devsync),
        # then the FIFO drain of fire-and-forget DP descendants. The
        # recursive _run_tree below stays uninstrumented so DP-heavy
        # runs don't flood the collector with per-devsync spans.
        queue: deque = deque()
        with span("sim.round-loop", kernel=inst.name):
            self._run_blocks(inst, queue)
        if queue:
            with span("sim.dp-drain", kernel=inst.name) as sp:
                drained = 0
                while queue:
                    self._run_blocks(queue.popleft(), queue)
                    drained += 1
                sp.set(launches=drained)

    def _run_tree(self, roots: list[KernelInstance]) -> None:
        from collections import deque

        queue = deque(roots)
        while queue:
            inst = queue.popleft()
            self._run_blocks(inst, queue)

    def _run_blocks(self, inst: KernelInstance, queue) -> None:
        fn = self.kernels.get(inst.name)
        if fn is None:
            raise SimulationError(f"launch of unknown kernel {inst.name!r}")
        if inst.grid <= 0 or inst.block_dim <= 0:
            raise SimulationError(
                f"kernel {inst.name}: empty launch configuration "
                f"<<<{inst.grid}, {inst.block_dim}>>>"
            )
        if inst.block_dim > self.spec.max_threads_per_block:
            raise SimulationError(
                f"kernel {inst.name}: block of {inst.block_dim} threads exceeds "
                f"device limit {self.spec.max_threads_per_block}"
            )
        prof = self.profiler
        if prof is not None:
            # devsync children execute inside this bracket (via
            # _consume_devsync -> _run_tree), so the stack nests and
            # their rounds attribute to the child, not the parent
            prof.enter(inst)
        try:
            for bx in range(inst.grid):
                trace, leftover = self._run_block(inst, fn, bx)
                inst.blocks.append(trace)
                # children not consumed by an explicit device-sync join the
                # FIFO queue (implicit join at parent end still holds for the
                # *timing* model via the instance tree)
                queue.extend(leftover)
        finally:
            if prof is not None:
                prof.exit()

    # ------------------------------------------------------------- internals

    def _make_warps(self, inst: KernelInstance, fn, bx: int, shared: dict):
        wsz = self.spec.warp_size
        bdim = inst.block_dim
        warps = []
        for wbase in range(0, bdim, wsz):
            lanes = range(wbase, min(wbase + wsz, bdim))
            ctxs = [ThreadCtx(tx, bx, bdim, inst.grid, shared, wsz) for tx in lanes]
            gens = [fn(ctx, *inst.args) for ctx in ctxs]
            warps.append(_Warp(gens, ctxs))
        return warps

    def _run_block(self, inst: KernelInstance, fn, bx: int):
        shared: dict = {}
        warps = self._make_warps(inst, fn, bx, shared)
        trace = BlockTrace(
            block_idx=bx,
            num_threads=inst.block_dim,
            num_warps=len(warps),
        )
        block_pending: list[KernelInstance] = []
        segment_start = 0  # cycles already closed into previous segments

        while True:
            progressed = False
            barrier_waiters = 0
            done_warps = 0
            for warp in warps:
                status = self._run_warp(warp, inst, trace, block_pending)
                if status == "barrier":
                    barrier_waiters += 1
                elif status == "done":
                    done_warps += 1
                elif status == "devsync":
                    # close current segment at this warp's cycle mark
                    self._consume_devsync(inst, trace, warps, block_pending,
                                          segment_start)
                    segment_start = max(w.cycles for w in warps)
                    progressed = True
                if status == "progress":
                    progressed = True
            if done_warps == len(warps):
                break
            if barrier_waiters + done_warps == len(warps) and barrier_waiters:
                # release the block barrier; warps that arrived early have
                # been stalling since their own arrival cycle — attribute
                # the gap to the release point (the slowest warp)
                mark = max(w.cycles for w in warps)
                for warp in warps:
                    if any(st == _AT_BARRIER for st in warp.states):
                        trace.barrier_stall_cycles += mark - warp.cycles
                    for i, st in enumerate(warp.states):
                        if st == _AT_BARRIER:
                            warp.states[i] = _RUNNING
                progressed = True
            if not progressed:
                raise SimulationError(
                    f"deadlock in kernel {inst.name} block {bx}: "
                    f"{barrier_waiters} warps at barrier, {done_warps} done"
                )

        block_cycles = max(w.cycles for w in warps) if warps else 0
        trace.segments.append(block_cycles - segment_start)
        for warp in warps:
            trace.warp_steps += warp.steps
            trace.active_lane_steps += warp.active_steps
        # Launches were already recorded in trace.launches at LAUNCH time;
        # anything still in block_pending joins at parent-block end.
        return trace, block_pending

    def _run_warp(self, warp: _Warp, inst, trace, block_pending) -> str:
        """Advance one warp until it blocks, finishes, or requests devsync.

        Returns 'progress' | 'barrier' | 'done' | 'devsync'.
        """
        states = warp.states
        threads = warp.threads
        pending = warp.pending
        ctxs = warp.ctxs
        mem = self.mem
        cost = self.cost
        seg_bytes = self.spec.dram_segment_bytes
        prof = self.profiler
        made_progress = False

        while True:
            live = [i for i, st in enumerate(states) if st == _RUNNING]
            if not live:
                # warp-scoped reconvergence: release lanes waiting at a
                # __syncwarp once no lane can run ahead of it
                released = False
                for i, st in enumerate(states):
                    if st == _AT_WARP_BARRIER:
                        states[i] = _RUNNING
                        released = True
                if released:
                    made_progress = True
                    continue
                if any(st == _AT_BARRIER for st in states):
                    return "barrier" if not made_progress else "progress"
                return "done"
            accesses: list[tuple[int, int]] = []  # (addr, itemsize)
            atomics: dict[int, int] = {}
            extra_cycles = 0
            extra_steps = 0
            devsync_requested = False
            active = 0
            op0 = -1  # profiling only: -1 unset, -2 mixed, else the opcode
            if prof is not None:
                ctr = mem.counters
                dram0 = ctr.dram_transactions
                hits0 = ctr.l2_hits
                miss0 = ctr.l2_misses
            for i in live:
                gen = threads[i]
                try:
                    ev = gen.send(pending[i])
                except StopIteration:
                    states[i] = _DONE
                    continue
                pending[i] = None
                active += 1
                op = ev[0]
                if prof is not None and op != op0 and op0 != -2:
                    op0 = op if op0 == -1 else -2
                if op == LD:
                    arr = ev[1]
                    idx = ev[2]
                    pending[i] = arr.load(idx)
                    accesses.append((arr.addr_of(idx), arr.itemsize))
                elif op == ST:
                    arr = ev[1]
                    idx = ev[2]
                    arr.store(idx, ev[3])
                    accesses.append((arr.addr_of(idx), arr.itemsize))
                elif op == ATOM:
                    pending[i] = self._do_atomic(ev)
                    addr = ev[2].addr_of(ev[3])
                    atomics[addr] = atomics.get(addr, 0) + 1
                    accesses.append((addr, ev[2].itemsize))
                elif op == SYNC:
                    states[i] = _AT_BARRIER
                elif op == WSYNC:
                    states[i] = _AT_WARP_BARRIER
                elif op == LAUNCH:
                    child = self.on_launch(inst, ev[1], ev[2], ev[3], ev[4])
                    block_pending.append(child)
                    trace.launches.append(LaunchRecord(
                        segment=len(trace.segments),
                        offset_cycles=warp.cycles,
                        child=child,
                    ))
                    extra_cycles += cost.launch_uops * cost.cycles_per_warp_step
                    extra_steps += cost.launch_uops
                elif op == DEVSYNC:
                    devsync_requested = True
                elif op == INTR:
                    value, cycles = self.intrinsic_handler(ev[1], ev[2],
                                                           inst, ctxs[i])
                    pending[i] = value
                    extra_cycles += cycles
                else:  # pragma: no cover - defensive
                    raise SimulationError(f"unknown event opcode {op}")
            if active == 0:
                # all live lanes hit a barrier simultaneously or finished
                continue
            made_progress = True
            # --- price the round ------------------------------------------
            round_cycles = cost.cycles_per_warp_step
            if accesses:
                segments = coalesce_round(accesses, seg_bytes)
                round_cycles += mem.access_segments(segments)
            if atomics:
                worst_conflict = max(atomics.values())
                round_cycles += cost.atomic_cycles * worst_conflict
            # fold per-thread compute cycles: take the max lane accumulator
            lane_extra = 0
            for i in live:
                c = ctxs[i].c
                if c:
                    if c > lane_extra:
                        lane_extra = c
                    ctxs[i].c = 0
            warp.cycles += round_cycles + extra_cycles + lane_extra
            warp.steps += 1 + extra_steps
            warp.active_steps += active + extra_steps
            if prof is not None:
                prof.record_round(op0, active,
                                  ctr.dram_transactions - dram0,
                                  ctr.l2_hits - hits0,
                                  ctr.l2_misses - miss0, False)
            if devsync_requested:
                return "devsync"

    def _do_atomic(self, ev):
        op = ev[1]
        arr: DeviceArray = ev[2]
        idx = ev[3]
        old = arr.load(idx)
        if op == "add":
            arr.store(idx, old + ev[4])
        elif op == "sub":
            arr.store(idx, old - ev[4])
        elif op == "min":
            if ev[4] < old:
                arr.store(idx, ev[4])
        elif op == "max":
            if ev[4] > old:
                arr.store(idx, ev[4])
        elif op == "exch":
            arr.store(idx, ev[4])
        elif op == "cas":
            if old == ev[4]:
                arr.store(idx, ev[5])
        elif op == "or":
            arr.store(idx, old | ev[4])
        elif op == "and":
            arr.store(idx, old & ev[4])
        else:  # pragma: no cover - typechecker prevents
            raise SimulationError(f"unknown atomic op {op!r}")
        return old

    def _consume_devsync(self, inst, trace, warps, block_pending, segment_start):
        """Close the current segment and functionally run the block's
        pending children (parent swap happens here in the timing model)."""
        mark = max(w.cycles for w in warps)
        trace.segments.append(mark - segment_start)
        children = list(block_pending)
        block_pending.clear()
        # cudaDeviceSynchronize: the block's children (and, transitively,
        # their descendants) must complete before the block resumes
        self._run_tree(children)


def coalesce_round(accesses: list[tuple[int, int]], seg_bytes: int) -> set[int]:
    """Coalesce one warp round's (addr, itemsize) accesses into segments."""
    segments: set[int] = set()
    add = segments.add
    for addr, itemsize in accesses:
        first = addr // seg_bytes
        add(first)
        last = (addr + itemsize - 1) // seg_bytes
        if last != first:
            add(last)
    return segments

"""Device specifications and the simulator cost model.

The paper evaluates on an NVIDIA Tesla K20c (Kepler GK110, compute
capability 3.5) with CUDA 7.0. :data:`K20C` captures the architectural
limits that drive the paper's findings; :class:`CostModel` holds the
first-order cost constants of the functional/timing simulator.

The cost constants are *calibration knobs*, not measurements: they are set
so that the simulator reproduces the paper's published ratios (see
DESIGN.md §5 and EXPERIMENTS.md). Each constant documents which observation
it is responsible for.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class DeviceSpec:
    """Architectural limits of a simulated GPU."""

    name: str
    #: number of streaming multiprocessors (K20c: 13 SMX)
    num_sms: int
    #: SIMT width
    warp_size: int
    #: maximum resident threads per SM
    max_threads_per_sm: int
    #: maximum resident warps per SM (Kepler: 64)
    max_warps_per_sm: int
    #: maximum resident blocks per SM (Kepler: 16)
    max_blocks_per_sm: int
    #: maximum threads per block
    max_threads_per_block: int
    #: maximum concurrently executing kernels (paper §II.A: 32)
    max_concurrent_kernels: int
    #: maximum DP nesting depth (paper §II.A: 24)
    max_nesting_depth: int
    #: default fixed-size pending-launch pool (paper §III.B: 2048)
    fixed_pool_size: int
    #: DRAM transaction segment size in bytes (L2 line)
    dram_segment_bytes: int
    #: L2 cache size in bytes
    l2_bytes: int
    #: global memory size in bytes
    global_mem_bytes: int

    @property
    def max_resident_warps(self) -> int:
        return self.num_sms * self.max_warps_per_sm


#: The paper's evaluation GPU (Tesla K20c, GK110).
K20C = DeviceSpec(
    name="Tesla K20c (simulated)",
    num_sms=13,
    warp_size=32,
    max_threads_per_sm=2048,
    max_warps_per_sm=64,
    max_blocks_per_sm=16,
    max_threads_per_block=1024,
    max_concurrent_kernels=32,
    max_nesting_depth=24,
    fixed_pool_size=2048,
    dram_segment_bytes=128,
    l2_bytes=1536 * 1024,
    global_mem_bytes=5 * 1024 * 1024 * 1024,
)

#: A small spec for fast unit tests (fewer SMs and warps so saturation and
#: occupancy effects appear with tiny workloads).
TINY = DeviceSpec(
    name="tiny-test-gpu",
    num_sms=2,
    warp_size=32,
    max_threads_per_sm=256,
    max_warps_per_sm=8,
    max_blocks_per_sm=4,
    max_threads_per_block=128,
    max_concurrent_kernels=4,
    max_nesting_depth=24,
    fixed_pool_size=16,
    dram_segment_bytes=128,
    l2_bytes=16 * 1024,
    global_mem_bytes=64 * 1024 * 1024,
)


@dataclass(frozen=True)
class CostModel:
    """First-order cost constants (cycles unless noted).

    Every knob names the paper observation it reproduces; see DESIGN.md §5.
    """

    # --- execution ---------------------------------------------------------
    #: cycles charged per warp instruction-step (SIMT issue)
    cycles_per_warp_step: int = 1
    #: stall cycles charged per DRAM transaction missing in L2
    dram_transaction_cycles: int = 40
    #: stall cycles for an L2 hit
    l2_hit_cycles: int = 8
    #: cycles per atomic operation (serialized per conflicting address)
    atomic_cycles: int = 12
    #: extra warp-steps a launching thread spends preparing a child launch
    #: (parameter parsing/buffering — §III.B "Kernel Launch Overhead";
    #: single-thread launches therefore also depress warp efficiency, which
    #: the paper notes in §V.D)
    launch_uops: int = 8

    # --- dynamic parallelism runtime --------------------------------------
    #: fixed driver/runtime latency from launch to earliest dispatch
    launch_latency_cycles: int = 1200
    #: minimum gap between two kernel dispatches device-wide (the grid
    #: dispatcher is a serial resource; with thousands of pending child
    #: kernels this term dominates basic-dp — §III.B)
    dispatch_serialization_cycles: int = 300
    #: extra latency per kernel that overflows into the virtualized pending
    #: pool (§III.B "Kernel Buffering Overhead")
    virtual_pool_penalty_cycles: int = 4000
    #: DRAM transactions charged for buffering one pending launch's
    #: parameters (§III.B; consolidation replaces these with buffer pushes)
    launch_param_transactions: int = 2
    #: extra DRAM transactions per virtual-pool kernel (management traffic)
    virtual_pool_transactions: int = 4
    #: cycles for swapping a parent block out/in at cudaDeviceSynchronize
    #: (§III.B "Synchronization Overhead")
    swap_cycles: int = 1200
    #: DRAM transactions charged per swapped parent block (state save/restore)
    swap_transactions: int = 24

    # --- allocators (per-operation costs; Fig. 5) --------------------------
    #: CUDA default device malloc/free (global heap lock + list walk)
    malloc_default_cycles: int = 2200
    #: halloc slab allocator (faster, still per-op bookkeeping; the paper
    #: finds it roughly on par with the default allocator for this pattern)
    malloc_halloc_cycles: int = 1600
    #: pre-allocated pool: one atomic bump
    malloc_prealloc_cycles: int = 40
    #: heap-lock convoy: the default allocator serializes on a device-wide
    #: lock, so the k-th concurrent allocation waits ~k lock tenures. The
    #: per-op cost grows by base*contention*allocs_so_far — this is what
    #: makes warp-level consolidation (many buffers) pay 20x with the
    #: default allocator in the paper's Fig. 5.
    malloc_default_contention: float = 0.40
    #: halloc shards its bookkeeping across slabs: milder convoy
    malloc_halloc_contention: float = 0.30
    #: the pre-allocated pool is a single atomicAdd: no convoy
    malloc_prealloc_contention: float = 0.0

    # --- consolidation runtime ---------------------------------------------
    #: cycles for one consolidation-buffer push beyond its memory traffic
    buffer_push_cycles: int = 4
    #: cycles for the custom global barrier arrive (atomic + flag read)
    global_barrier_cycles: int = 60
    #: expected insertion-counter contention per buffer push, by buffer
    #: scope. A naive push implementation would contend harder the wider
    #: the scope (warp counter < block counter < device-wide counter),
    #: but production consolidators warp-aggregate the counter atomic
    #: (one reservation per warp), which makes contention roughly
    #: scope-independent — hence calibrated parity defaults. The knobs
    #: let the granularity ablation explore the un-aggregated regime,
    #: where wide scopes pay for their shared counter (DESIGN.md §10).
    push_conflict_warp: int = 1
    push_conflict_block: int = 1
    push_conflict_grid: int = 1

    def scaled(self, **overrides) -> "CostModel":
        """Return a copy with some constants overridden (ablation studies)."""
        return replace(self, **overrides)


DEFAULT_COST_MODEL = CostModel()

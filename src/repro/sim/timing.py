"""Discrete-event timing model of the GPU.

Replays the traces produced by the functional engine against a device
scheduler with Kepler's structural limits, producing the quantities the
paper measures:

* **makespan** (performance; Figs. 5-7 report speedups = makespan ratios);
* **achieved SM occupancy** — time-weighted resident warps / warp slots
  (Fig. 9);
* pending-pool statistics — launches beyond the fixed pool pay the
  virtualized-pool penalty (§III.B);
* device-sync **swap** costs: a parent block suspended at
  ``cudaDeviceSynchronize`` releases its SM resources, waits for the
  children it launched, pays the swap penalty and re-acquires resources.

Model rules (first-order, documented in DESIGN.md §5):

1. A kernel launched at time *t* becomes *dispatchable* at
   ``t + launch_latency`` (+ the virtual-pool penalty if the pending pool
   overflowed). Host launches enter the same queue with zero latency.
2. The grid dispatcher admits kernels FIFO, at most one admission per
   ``dispatch_serialization_cycles``, and keeps at most
   ``max_concurrent_kernels`` kernels with unfinished blocks admitted.
3. Admitted kernels place blocks greedily on SMs subject to
   blocks/warps/threads-per-SM limits; blocks run for their traced segment
   durations.
4. A kernel completes when its blocks have finished *and* all child
   kernels have completed (CUDA's implicit parent-child join).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from ..errors import SimulationError
from .engine import BlockTrace, KernelInstance
from .specs import CostModel, DeviceSpec


@dataclass
class TimingResult:
    makespan: float
    #: time-weighted average of resident warps / total warp slots
    achieved_occupancy: float
    #: peak number of simultaneously pending (not yet admitted) kernels
    max_pending: int
    #: kernels that overflowed the fixed pending pool
    virtual_pool_kernels: int
    #: number of parent-block swap events at device-sync points
    swaps: int
    #: per-kernel-instance completion times (uid -> time)
    completion: dict[int, float] = field(default_factory=dict)
    #: time-weighted average of admitted kernels (concurrency actually used)
    avg_active_kernels: float = 0.0


class _SM:
    __slots__ = ("blocks", "warps", "threads")

    def __init__(self):
        self.blocks = 0
        self.warps = 0
        self.threads = 0


class _KernelState:
    __slots__ = ("inst", "next_block", "blocks_left", "children_left",
                 "admitted", "done", "parent", "waiters")

    def __init__(self, inst: KernelInstance):
        self.inst = inst
        self.next_block = 0
        self.blocks_left = len(inst.blocks)
        self.children_left = 0
        self.admitted = False
        self.done = False
        self.waiters: list = []  # suspended parent blocks waiting on this uid


class _BlockRun:
    """A block's residency state machine across its segments."""

    __slots__ = ("kernel", "trace", "segment", "sm", "launched_children",
                 "wait_uids", "block_start_credit")

    def __init__(self, kernel: _KernelState, trace: BlockTrace):
        self.kernel = kernel
        self.trace = trace
        self.segment = 0
        self.sm = -1
        self.wait_uids: set[int] = set()
        # cycles of segments already executed (for launch offset mapping)
        self.block_start_credit = 0


class DeviceScheduler:
    def __init__(self, spec: DeviceSpec, cost: CostModel, memsys=None):
        self.spec = spec
        self.cost = cost
        self.memsys = memsys
        self.sms = [_SM() for _ in range(spec.num_sms)]
        self.now = 0.0
        self._events: list = []
        self._seq = 0
        self.kernels: dict[int, _KernelState] = {}
        self.pending: list[tuple[float, int, _KernelState]] = []  # ready heap
        self.place_queue: list[_KernelState] = []  # admitted, blocks to place
        self.active_kernels = 0
        self.next_dispatch_ok = 0.0
        self.max_pending = 0
        self.virtual_pool_kernels = 0
        self.swaps = 0
        self.completion: dict[int, float] = {}
        # occupancy integration
        self._warp_area = 0.0
        self._resident_warps = 0
        self._last_occ_t = 0.0
        self._kernel_area = 0.0
        self._last_k_t = 0.0
        self._suspended: list[tuple[_BlockRun, float]] = []

    # ---------------------------------------------------------------- events

    def _post(self, t: float, fn, *args) -> None:
        self._seq += 1
        heapq.heappush(self._events, (t, self._seq, fn, args))

    def _advance_occupancy(self, t: float) -> None:
        if t > self._last_occ_t:
            self._warp_area += self._resident_warps * (t - self._last_occ_t)
            self._kernel_area += self.active_kernels * (t - self._last_k_t)
            self._last_occ_t = t
            self._last_k_t = t

    # ------------------------------------------------------------------ API

    def run(self, roots: list[KernelInstance]) -> TimingResult:
        """Schedule a forest of root (host-launched) kernels to completion.

        Host launches target the default stream, so root kernel *i+1* is
        released only when root *i* has fully completed (this matches a
        host loop that reads results back between launches).
        """
        for inst in roots:
            self._register_tree(inst)
        self._root_order = [self.kernels[inst.uid] for inst in roots]
        self._next_root = 0
        if self._root_order:
            self._release_next_root()
        while self._events:
            self.now, _, fn, args = heapq.heappop(self._events)
            self._advance_occupancy(self.now)
            fn(*args)
        # sanity: everything completed
        for ks in self.kernels.values():
            if not ks.done:
                raise SimulationError(
                    f"timing deadlock: kernel {ks.inst.name} (uid {ks.inst.uid}) "
                    f"never completed ({ks.blocks_left} blocks, "
                    f"{ks.children_left} children left)"
                )
        makespan = self.now
        total_slots = self.spec.max_resident_warps
        occupancy = (self._warp_area / (makespan * total_slots)) if makespan > 0 else 0.0
        avg_active = (self._kernel_area / makespan) if makespan > 0 else 0.0
        return TimingResult(
            makespan=makespan,
            achieved_occupancy=occupancy,
            max_pending=self.max_pending,
            virtual_pool_kernels=self.virtual_pool_kernels,
            swaps=self.swaps,
            completion=self.completion,
            avg_active_kernels=avg_active,
        )

    # ------------------------------------------------------------ internals

    def _release_next_root(self) -> None:
        ks = self._root_order[self._next_root]
        self._next_root += 1
        self._post(self.now, self._kernel_ready, ks)

    def _register_tree(self, inst: KernelInstance) -> None:
        ks = _KernelState(inst)
        self.kernels[inst.uid] = ks
        for child in inst.children:
            self._register_tree(child)
        ks.children_left = len(inst.children)

    # -- kernel admission ----------------------------------------------------

    def _kernel_ready(self, ks: _KernelState) -> None:
        """Kernel has cleared launch latency; it joins the pending queue."""
        pending_count = len(self.pending) + 1
        self.max_pending = max(self.max_pending, pending_count)
        ready_t = self.now
        if pending_count > self.spec.fixed_pool_size:
            # overflow into the virtualized pool (§III.B)
            ready_t += self.cost.virtual_pool_penalty_cycles
            self.virtual_pool_kernels += 1
            if self.memsys is not None:
                self.memsys.charge_overhead(
                    "virtual-pool", self.cost.virtual_pool_transactions
                )
        self._seq += 1
        heapq.heappush(self.pending, (ready_t, self._seq, ks))
        self._try_dispatch()

    def _try_dispatch(self) -> None:
        while (self.pending
               and self.active_kernels < self.spec.max_concurrent_kernels):
            ready_t, _, ks = self.pending[0]
            t = max(ready_t, self.next_dispatch_ok, self.now)
            if t > self.now:
                # re-examine at the earliest legal dispatch time
                heapq.heappop(self.pending)
                self._seq += 1
                heapq.heappush(self.pending, (t, self._seq, ks))
                self._post(t, self._try_dispatch)
                return
            heapq.heappop(self.pending)
            self.active_kernels += 1
            ks.admitted = True
            self.next_dispatch_ok = self.now + self.cost.dispatch_serialization_cycles
            self.place_queue.append(ks)
        self._place_blocks()

    # -- block placement -------------------------------------------------------

    def _fits(self, sm: _SM, warps: int, threads: int) -> bool:
        return (sm.blocks < self.spec.max_blocks_per_sm
                and sm.warps + warps <= self.spec.max_warps_per_sm
                and sm.threads + threads <= self.spec.max_threads_per_sm)

    def _place_blocks(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            # resume suspended blocks first (swap-in priority)
            if self._suspended:
                run, resume_cost = self._suspended[0]
                if self._acquire(run, extra_delay=resume_cost):
                    self._suspended.pop(0)
                    progressed = True
                    continue
            for ks in list(self.place_queue):
                if ks.next_block >= len(ks.inst.blocks):
                    self.place_queue.remove(ks)
                    continue
                trace = ks.inst.blocks[ks.next_block]
                run = _BlockRun(ks, trace)
                if self._acquire(run):
                    ks.next_block += 1
                    progressed = True
                    break  # placement order: FIFO across kernels

    def _acquire(self, run: _BlockRun, extra_delay: float = 0.0) -> bool:
        warps = run.trace.num_warps
        threads = run.trace.num_threads
        for i, sm in enumerate(self.sms):
            if self._fits(sm, warps, threads):
                self._advance_occupancy(self.now)
                sm.blocks += 1
                sm.warps += warps
                sm.threads += threads
                self._resident_warps += warps
                run.sm = i
                self._start_segment(run, extra_delay)
                return True
        return False

    def _release(self, run: _BlockRun) -> None:
        sm = self.sms[run.sm]
        self._advance_occupancy(self.now)
        sm.blocks -= 1
        sm.warps -= run.trace.num_warps
        sm.threads -= run.trace.num_threads
        self._resident_warps -= run.trace.num_warps
        run.sm = -1

    # -- segment execution ----------------------------------------------------

    def _start_segment(self, run: _BlockRun, extra_delay: float = 0.0) -> None:
        seg = run.segment
        duration = run.trace.segments[seg] + extra_delay
        start = self.now
        # schedule child launches that the trace attributes to this segment
        for rec in run.trace.launches:
            if rec.segment == seg:
                offset = max(0, rec.offset_cycles - run.block_start_credit)
                offset = min(offset, run.trace.segments[seg])
                child_ks = self.kernels[rec.child.uid]
                self._post(start + extra_delay + offset
                           + self.cost.launch_latency_cycles,
                           self._kernel_ready, child_ks)
        self._post(start + duration, self._segment_done, run)

    def _segment_done(self, run: _BlockRun) -> None:
        run.block_start_credit += run.trace.segments[run.segment]
        last = run.segment == len(run.trace.segments) - 1
        if last:
            self._release(run)
            self._block_finished(run.kernel)
            self._place_blocks()
            return
        # device-sync boundary: swap out, wait for children launched so far
        run.segment += 1
        wait = {rec.child.uid for rec in run.trace.launches
                if rec.segment < run.segment}
        wait = {uid for uid in wait if not self.kernels[uid].done}
        self._release(run)
        self.swaps += 1
        if self.memsys is not None:
            self.memsys.charge_overhead("swap", self.cost.swap_transactions)
        if not wait:
            self._resume_block(run)
        else:
            run.wait_uids = wait
            for uid in wait:
                self.kernels[uid].waiters.append(run)
        self._place_blocks()

    def _resume_block(self, run: _BlockRun) -> None:
        self._suspended.append((run, float(self.cost.swap_cycles)))
        self._place_blocks()

    # -- completion ------------------------------------------------------------

    def _block_finished(self, ks: _KernelState) -> None:
        ks.blocks_left -= 1
        if ks.blocks_left == 0:
            self.active_kernels -= 1
            if ks in self.place_queue:
                self.place_queue.remove(ks)
            self._try_dispatch()
            self._check_done(ks)

    def _check_done(self, ks: _KernelState) -> None:
        if ks.done or ks.blocks_left > 0 or ks.children_left > 0:
            return
        ks.done = True
        self.completion[ks.inst.uid] = self.now
        if ks.inst.parent_uid is None and self._next_root < len(self._root_order):
            # default-stream serialization: release the next host launch
            self._post(self.now + self.cost.dispatch_serialization_cycles,
                       self._release_next_root)
        # notify parent
        if ks.inst.parent_uid is not None:
            parent = self.kernels[ks.inst.parent_uid]
            parent.children_left -= 1
            self._check_done(parent)
        # wake suspended blocks waiting on this kernel
        for run in ks.waiters:
            run.wait_uids.discard(ks.inst.uid)
            if not run.wait_uids:
                self._resume_block(run)
        ks.waiters.clear()

"""Event protocol between compiled kernels and the SIMT engine.

The Python backend compiles every MiniCUDA kernel into a *generator
function*; a running thread is a generator that ``yield``s event tuples and
receives results back through ``send``. Events are plain tuples with an
integer opcode in slot 0 — the engine dispatches on ``ev[0]`` in a tight
loop, so this representation is deliberately minimal.

Opcode layouts::

    (LD,   array, index)                      -> loaded value
    (ST,   array, index, value)               -> None
    (ATOM, op, array, index, a [, b])         -> old value   (op: 'add', ...)
    (SYNC,)                                   -> None  (__syncthreads)
    (WSYNC,)                                  -> None  (__syncwarp /
                                                 SIMT reconvergence point)
    (LAUNCH, name, grid, block, args_tuple)   -> None  (DP child launch)
    (DEVSYNC,)                                -> None  (cudaDeviceSynchronize)
    (INTR, name, args_tuple)                  -> intrinsic-defined value

Compute cost is *not* an event: threads accumulate plain cycles in
``ctx.c`` and the engine folds the per-warp maximum into the trace, which
keeps the generator round-trip count proportional to memory/control events
only (see DESIGN.md §5 on interpreter performance).
"""

from __future__ import annotations

LD = 0
ST = 1
ATOM = 2
SYNC = 3
LAUNCH = 4
DEVSYNC = 5
INTR = 6
WSYNC = 7

OPCODE_NAMES = {
    LD: "ld",
    ST: "st",
    ATOM: "atomic",
    SYNC: "syncthreads",
    LAUNCH: "launch",
    DEVSYNC: "device-sync",
    INTR: "intrinsic",
    WSYNC: "syncwarp",
}

#: atomic sub-operations understood by the engine
ATOMIC_OPS = ("add", "sub", "min", "max", "exch", "cas", "or", "and")


class ThreadCtx:
    """Per-thread execution context handed to compiled kernels.

    Attributes mirror the CUDA builtins (1-D only: the paper's codes and
    templates are 1-D). ``c`` accumulates compute cycles between yields.
    """

    __slots__ = ("tx", "bx", "bdim", "gdim", "c", "shared", "lane", "warp_id")

    def __init__(self, tx: int, bx: int, bdim: int, gdim: int,
                 shared: dict, warp_size: int):
        self.tx = tx
        self.bx = bx
        self.bdim = bdim
        self.gdim = gdim
        self.c = 0
        self.shared = shared
        self.lane = tx % warp_size
        self.warp_id = tx // warp_size

    def shared_array(self, name: str, n: int, fill=0):
        """Return the block-shared storage for a ``__shared__`` declaration.

        All threads of a block share one list per declaration name; the
        first thread to reach the declaration creates it.
        """
        arr = self.shared.get(name)
        if arr is None:
            arr = [fill] * n
            self.shared[name] = arr
        return arr

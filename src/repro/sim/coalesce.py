"""Warp memory-access coalescing.

CUDA hardware services one global-memory instruction per warp by grouping
the 32 lane addresses into aligned 128-byte segments; each distinct segment
costs one transaction. :func:`coalesce` reproduces that grouping. The
number of segments is the quantity the paper's Fig. 10 ultimately counts
(after L2 filtering).
"""

from __future__ import annotations

from typing import Iterable


def coalesce(addresses: Iterable[int], itemsize: int, segment_bytes: int = 128) -> set[int]:
    """Group byte addresses of a warp's lanes into aligned segments.

    Parameters
    ----------
    addresses:
        Byte addresses accessed by the active lanes (one per lane).
    itemsize:
        Size of each access in bytes; an access straddling a segment
        boundary touches both segments (possible with 8-byte types at
        unaligned offsets).
    segment_bytes:
        Segment (transaction) granularity, 128 B on Kepler.

    Returns
    -------
    set of segment indices (address // segment_bytes).
    """
    segments: set[int] = set()
    add = segments.add
    for addr in addresses:
        first = addr // segment_bytes
        add(first)
        last = (addr + itemsize - 1) // segment_bytes
        if last != first:
            add(last)
    return segments


def transactions_for(addresses: Iterable[int], itemsize: int,
                     segment_bytes: int = 128) -> int:
    """Number of transactions a warp access generates (no cache)."""
    return len(coalesce(addresses, itemsize, segment_bytes))

"""Simulated global memory: address space, device arrays and views.

Every device allocation gets a real range in a flat byte-address space so
that coalescing and cache behaviour are computed from true addresses, the
way the profiler hardware counters would see them. Functional storage is a
NumPy array per allocation (fast elementwise access from the interpreter),
while the address range drives the DRAM transaction model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import AllocationError, SimulationError

#: dtype spellings accepted by :meth:`GlobalMemory.alloc_array`.
_DTYPES = {
    "i4": np.int32,
    "u4": np.uint32,
    "i8": np.int64,
    "f4": np.float32,
    "f8": np.float64,
    "i1": np.int8,
}

_MINICUDA_DTYPE = {
    "int": "i4",
    "uint": "u4",
    "long": "i8",
    "size_t": "i8",
    "float": "f4",
    "double": "f8",
    "bool": "i1",
    "char": "i1",
    "void": "i1",
}


def dtype_for_type(base: str) -> str:
    """Map a MiniCUDA scalar base type to a dtype code."""
    return _MINICUDA_DTYPE[base]


class DeviceArray:
    """A device allocation: NumPy storage plus a base byte address.

    Indexing semantics match a C pointer of the element type. ``view(k)``
    performs pointer arithmetic (``p + k``). The object is deliberately
    small: the interpreter touches these on every memory event.
    """

    __slots__ = ("name", "data", "base_addr", "itemsize", "offset", "_root")

    def __init__(self, name: str, data: np.ndarray, base_addr: int, offset: int = 0,
                 root: Optional["DeviceArray"] = None):
        self.name = name
        self.data = data
        self.base_addr = base_addr
        self.itemsize = data.dtype.itemsize
        self.offset = offset
        self._root = root if root is not None else self

    # -- pointer arithmetic --------------------------------------------------

    def view(self, k: int) -> "DeviceArray":
        """``p + k`` — a shifted view sharing storage and address space."""
        if k == 0:
            return self
        return DeviceArray(self.name, self.data, self.base_addr, self.offset + int(k),
                           root=self._root)

    # -- functional access (host-side / interpreter) -------------------------

    def addr_of(self, index: int) -> int:
        return self.base_addr + (self.offset + index) * self.itemsize

    def load(self, index: int):
        i = self.offset + index
        if not 0 <= i < self.data.shape[0]:
            raise SimulationError(
                f"out-of-bounds load from {self.name!r}: index {index} "
                f"(offset {self.offset}, length {self.data.shape[0]})"
            )
        return self.data[i].item()

    def store(self, index: int, value) -> None:
        i = self.offset + index
        if not 0 <= i < self.data.shape[0]:
            raise SimulationError(
                f"out-of-bounds store to {self.name!r}: index {index} "
                f"(offset {self.offset}, length {self.data.shape[0]})"
            )
        try:
            self.data[i] = value
        except OverflowError:
            # C integer semantics: wrap modulo 2^bits (NumPy >= 2 raises on
            # out-of-range Python ints instead of wrapping)
            dt = self.data.dtype
            bits = dt.itemsize * 8
            wrapped = int(value) & ((1 << bits) - 1)
            if dt.kind == "i" and wrapped >= 1 << (bits - 1):
                wrapped -= 1 << bits
            self.data[i] = wrapped

    @property
    def size(self) -> int:
        return self.data.shape[0] - self.offset

    def to_numpy(self) -> np.ndarray:
        """Host copy of the (viewed) array contents."""
        return np.array(self.data[self.offset:], copy=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DeviceArray({self.name!r}, n={self.size}, "
                f"addr=0x{self.addr_of(0):x})")


@dataclass
class _Region:
    addr: int
    nbytes: int
    array: Optional[DeviceArray]


class GlobalMemory:
    """The device's flat global address space.

    Host-style allocations (``cudaMalloc``) are handed out by a bump
    pointer from the bottom; a dedicated *device heap* region at the top is
    managed by the pluggable allocators in :mod:`repro.alloc` (consolidation
    buffers live there).
    """

    #: base of the address space (avoid 0 == NULL)
    BASE = 0x1000
    ALIGN = 256

    def __init__(self, total_bytes: int, heap_bytes: int):
        if heap_bytes >= total_bytes:
            raise AllocationError("device heap larger than global memory")
        self.total_bytes = total_bytes
        self.heap_bytes = heap_bytes
        self._bump = self.BASE
        self._limit = self.BASE + total_bytes - heap_bytes
        self.heap_base = self._limit
        self.regions: dict[int, _Region] = {}
        self._counter = 0

    # -- host-style allocation -----------------------------------------------

    def alloc_array(self, name: str, dtype: str, n: int) -> DeviceArray:
        """Allocate an ``n``-element array of dtype code ``dtype``."""
        if n < 0:
            raise AllocationError(f"negative allocation size for {name!r}")
        np_dtype = _DTYPES[dtype]
        nbytes = max(1, n) * np.dtype(np_dtype).itemsize
        addr = self._aligned_bump(nbytes)
        data = np.zeros(max(1, n), dtype=np_dtype)
        arr = DeviceArray(name, data, addr)
        self.regions[addr] = _Region(addr, nbytes, arr)
        return arr

    def from_numpy(self, name: str, host: np.ndarray) -> DeviceArray:
        """``cudaMemcpy(HostToDevice)`` of a 1-D NumPy array."""
        host = np.ascontiguousarray(host)
        if host.ndim != 1:
            raise AllocationError("only 1-D arrays can be copied to device")
        code = host.dtype.str.lstrip("<>|=")
        if code not in _DTYPES:
            raise AllocationError(f"unsupported dtype {host.dtype}")
        arr = self.alloc_array(name, code, host.shape[0])
        arr.data[:] = host
        return arr

    def _aligned_bump(self, nbytes: int) -> int:
        addr = (self._bump + self.ALIGN - 1) // self.ALIGN * self.ALIGN
        if addr + nbytes > self._limit:
            raise AllocationError(
                f"out of device memory: requested {nbytes} bytes "
                f"({self._limit - addr} free)"
            )
        self._bump = addr + nbytes
        return addr

    # -- device-heap binding (used by repro.alloc allocators) -----------------

    def bind_heap_array(self, name: str, dtype: str, n: int, addr: int) -> DeviceArray:
        """Create an array whose storage lives at a heap address handed out
        by a device-side allocator."""
        np_dtype = _DTYPES[dtype]
        nbytes = max(1, n) * np.dtype(np_dtype).itemsize
        if not (self.heap_base <= addr and addr + nbytes <= self.BASE + self.total_bytes):
            raise AllocationError(
                f"heap binding outside heap region: 0x{addr:x} (+{nbytes})"
            )
        data = np.zeros(max(1, n), dtype=np_dtype)
        arr = DeviceArray(name, data, addr)
        self.regions[addr] = _Region(addr, nbytes, arr)
        return arr

    @property
    def bytes_in_use(self) -> int:
        return self._bump - self.BASE

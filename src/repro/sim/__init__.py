"""SIMT GPU simulator: the evaluation substrate standing in for the
paper's Tesla K20c (see DESIGN.md §2 for the substitution argument)."""

from .device import Device, Program  # noqa: F401
from .engine import FunctionalEngine, KernelInstance  # noqa: F401
from .occupancy import (  # noqa: F401
    DEFAULT_BLOCK_THREADS,
    KC_FOR_GRANULARITY,
    LaunchConfig,
    kc_config,
    kc_for,
    occupancy_config,
    theoretical_occupancy,
)
from .profiler import RunMetrics  # noqa: F401
from .specs import CostModel, DEFAULT_COST_MODEL, DeviceSpec, K20C, TINY  # noqa: F401

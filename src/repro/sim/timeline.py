"""Execution-timeline capture and rendering.

An optional deep-profiling aid on top of the timing model: re-runs the
scheduler with an event recorder attached and produces a per-kernel
timeline (launch, dispatch, first block placed, completion) that can be
rendered as an ASCII Gantt chart. This is the tool one reaches for to *see*
the paper's §III.B story — thousands of basic-dp children crawling through
the serialized dispatcher versus a handful of consolidated launches.

    from repro.sim.timeline import capture_timeline, render_gantt
    spans = capture_timeline(device)      # after device.synchronize()
    print(render_gantt(spans, width=80))
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .engine import KernelInstance
from .specs import CostModel, DeviceSpec
from .timing import DeviceScheduler, TimingResult


@dataclass
class KernelSpan:
    """Lifetime of one kernel instance in the schedule."""

    uid: int
    name: str
    depth: int
    grid: int
    block_dim: int
    from_device: bool
    completion: float
    start: float = 0.0

    @property
    def duration(self) -> float:
        return self.completion - self.start


@dataclass
class OccupancySample:
    """One step of the occupancy/active-kernels step function: from
    time ``t`` (until the next sample) the device held this many
    resident warps and admitted kernels."""

    t: float
    resident_warps: int
    active_kernels: int


@dataclass
class Timeline:
    makespan: float
    spans: list[KernelSpan] = field(default_factory=list)
    #: occupancy step function (only populated when captured with
    #: ``occupancy=True``); samples are state *transitions*, so the
    #: series is exact, not rate-limited
    occupancy: list[OccupancySample] = field(default_factory=list)

    def by_name(self) -> dict[str, list[KernelSpan]]:
        out: dict[str, list[KernelSpan]] = {}
        for span in self.spans:
            out.setdefault(span.name, []).append(span)
        return out

    def summary(self) -> str:
        lines = [f"makespan: {self.makespan:,.0f} cycles, "
                 f"{len(self.spans)} kernel instances"]
        for name, spans in sorted(self.by_name().items()):
            total = sum(s.duration for s in spans)
            lines.append(
                f"  {name:32s} x{len(spans):<6d} "
                f"busy={total:>12,.0f}cy "
                f"avg={total / len(spans):>10,.0f}cy"
            )
        return "\n".join(lines)


class _RecordingScheduler(DeviceScheduler):
    """DeviceScheduler that records per-kernel first-placement times."""

    def __init__(self, spec, cost, memsys=None):
        super().__init__(spec, cost, memsys)
        self.first_placement: dict[int, float] = {}

    def _acquire(self, run, extra_delay: float = 0.0) -> bool:
        placed = super()._acquire(run, extra_delay)
        if placed:
            uid = run.kernel.inst.uid
            self.first_placement.setdefault(uid, self.now)
        return placed


class _SamplingScheduler(_RecordingScheduler):
    """Recording scheduler that additionally samples the occupancy
    integrator at every state transition.

    ``_advance_occupancy(t)`` closes the interval ``[_last_occ_t, t)``
    over which the current resident-warp/active-kernel counts held, so
    emitting a sample there (stamped at the interval start, deduplicated
    against an unchanged previous state) reconstructs the exact step
    function the makespan-normalized occupancy integral is computed
    from — no extra scheduler events, hence an identical schedule.
    """

    def __init__(self, spec, cost, memsys=None):
        super().__init__(spec, cost, memsys)
        self.samples: list[OccupancySample] = []

    def _advance_occupancy(self, t: float) -> None:
        if t > self._last_occ_t:
            samples = self.samples
            if (not samples
                    or samples[-1].resident_warps != self._resident_warps
                    or samples[-1].active_kernels != self.active_kernels):
                samples.append(OccupancySample(
                    t=self._last_occ_t,
                    resident_warps=self._resident_warps,
                    active_kernels=self.active_kernels,
                ))
        super()._advance_occupancy(t)


def capture_timeline(roots: list[KernelInstance], spec: DeviceSpec,
                     cost: CostModel, occupancy: bool = False) -> Timeline:
    """Re-schedule a finished instance forest with recording enabled.

    The re-run uses no memory system: the scheduler only consults it to
    *charge* overhead traffic counters, never for timing, so the
    replayed makespan is bitwise equal to the original run's
    (``RunMetrics.cycles``) — the profiler's reconciliation invariant.
    """
    cls = _SamplingScheduler if occupancy else _RecordingScheduler
    scheduler = cls(spec, cost)
    result: TimingResult = scheduler.run(roots)
    timeline = Timeline(makespan=result.makespan)
    if occupancy:
        timeline.occupancy = scheduler.samples
    for inst in _iter_instances(roots):
        timeline.spans.append(KernelSpan(
            uid=inst.uid,
            name=inst.name,
            depth=inst.depth,
            grid=inst.grid,
            block_dim=inst.block_dim,
            from_device=inst.from_device,
            start=scheduler.first_placement.get(inst.uid, 0.0),
            completion=result.completion[inst.uid],
        ))
    timeline.spans.sort(key=lambda s: (s.start, s.uid))
    return timeline


def _iter_instances(roots):
    for root in roots:
        yield from root.subtree()


def render_gantt(timeline: Timeline, width: int = 72,
                 max_rows: int = 40) -> str:
    """ASCII Gantt chart of kernel lifetimes (one row per instance; long
    forests are sampled down to ``max_rows`` rows)."""
    if not timeline.spans or timeline.makespan <= 0:
        return "(empty timeline)"
    spans = timeline.spans
    step = max(1, len(spans) // max_rows)
    sampled = spans[::step]
    scale = width / timeline.makespan
    name_w = min(28, max(len(s.name) for s in sampled) + 2)
    lines = []
    for s in sampled:
        start = int(s.start * scale)
        length = max(1, int(s.duration * scale))
        bar = " " * start + "#" * min(length, width - start)
        tag = f"{s.name}[{s.grid}x{s.block_dim}]"
        lines.append(f"{tag[:name_w].ljust(name_w)}|{bar.ljust(width)}|")
    if step > 1:
        lines.append(f"... ({len(spans)} instances total, showing every "
                     f"{step}th)")
    return "\n".join(lines)


def device_timeline(device) -> Timeline:
    """Capture a timeline from a Device's most recent completed launches.

    Must be called *after* :meth:`Device.synchronize`; uses the cumulative
    root list so the whole session is visible.
    """
    return capture_timeline(device._all_roots, device.spec, device.cost)

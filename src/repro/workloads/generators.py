"""Named, parameterized synthetic workloads.

This module absorbs the free functions of :mod:`repro.data.graphgen` and
:mod:`repro.data.treegen` behind registry entries and adds the scenario
families the paper's fixed datasets cannot express:

* **road** — a road-network-like lattice: almost every node has degree
  2-4 (below any delegation threshold), with sparse higher-degree
  interchange nodes, so child kernels are *rare and tiny* — the regime
  where grid-level designated-launcher/barrier overhead has nothing to
  amortize against;
* **star** — a hub-adversarial graph: a couple of hubs adjacent to every
  other node (capped at the 1024-thread block limit), the extreme of the
  paper's skew argument;
* **chain** — a spider of long chains hanging off one hub: maximal
  sequential depth per work item at bounded diameter (so iterative apps
  still converge), stressing consolidation's latency rather than its
  width;
* **bimodal** — a two-mode degree mixture (a sea of small rows plus a
  heavy minority above the threshold), the shape where the delegation
  guard itself does the heavy lifting;
* **tree-skewed / tree-balanced / tree-deep** — sibling-fanout variance
  (warp imbalance), perfectly regular fanout (no imbalance to recover),
  and doubled recursion depth.

Every builder is deterministic for a given seed; the per-app default
datasets (``citeseer(seed=31)`` etc.) produce byte-identical arrays to
the pre-registry ``default_dataset`` implementations, which is what
keeps existing result-store entries valid (DESIGN.md §12).
"""

from __future__ import annotations

import math

import numpy as np

from ..data.graphgen import _csr_from_degree_targets, citeseer_like, kron_like
from ..data.structures import Graph, Tree
from .spec import WorkloadSpec, register_workload

#: adjacency lists are capped at one thread block, like the generators in
#: repro.data.graphgen: basic-dp child kernels launch <<<1, deg>>>
MAX_BLOCK_DEGREE = 1023


# -- graph builders ------------------------------------------------------------


def uniform_graph(scale: float = 1.0, *, n: int = 0, avg_degree: int = 8,
                  seed: int = 3, name: str = "") -> Graph:
    """Low-skew control graph: every node has exactly ``avg_degree``
    out-edges (targets still follow preferential attachment).

    Canonical home of the former :func:`repro.data.graphgen.uniform_random`
    (which remains as a deprecated shim); ``n == 0`` sizes the graph from
    ``scale`` the way the other workload builders do.
    """
    if n <= 0:
        n = max(64, int(800 * scale))
        name = name or f"uniform(x{scale:g})"
    rng = np.random.default_rng(seed)
    degrees = np.full(n, avg_degree, dtype=np.int64)
    return _csr_from_degree_targets(name or "uniform", rng, degrees)


def _symmetric_graph(name: str, n: int, u: np.ndarray, v: np.ndarray,
                     rng) -> Graph:
    """Symmetrize, dedup, drop self loops, and build a validated CSR."""
    uu = np.concatenate([u, v])
    vv = np.concatenate([v, u])
    keep = uu != vv
    uu, vv = uu[keep], vv[keep]
    order = np.lexsort((vv, uu))
    uu, vv = uu[order], vv[order]
    dedup = np.ones(len(uu), dtype=bool)
    dedup[1:] = (uu[1:] != uu[:-1]) | (vv[1:] != vv[:-1])
    uu, vv = uu[dedup], vv[dedup]
    row_ptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(row_ptr, uu + 1, 1)
    row_ptr = np.cumsum(row_ptr)
    weights = rng.integers(1, 11, size=len(uu)).astype(np.int32)
    g = Graph(name, row_ptr.astype(np.int64), vv.astype(np.int32), weights)
    g.validate()
    return g


def road_grid(scale: float = 1.0, *, seed: int = 4,
              junction_every: int = 13) -> Graph:
    """Road-like lattice: a ``side x side`` 4-neighbour grid plus sparse
    higher-degree interchanges (every ``junction_every``-th node gains
    eight chords), symmetric."""
    side = max(8, int(round(28 * math.sqrt(max(scale, 1e-6)))))
    n = side * side
    rng = np.random.default_rng(seed)
    idx = np.arange(n)
    right = idx[idx % side != side - 1]
    down = idx[idx < n - side]
    u = np.concatenate([right, down])
    v = np.concatenate([right + 1, down + side])
    junctions = idx[::junction_every]
    offsets = np.array([2, 3, side + 1, side + 2, 2 * side + 1,
                        2 * side + 3, 3 * side + 2, 3 * side + 5])
    ju = np.repeat(junctions, len(offsets))
    jv = (ju + np.tile(offsets, len(junctions))) % n
    u = np.concatenate([u, ju])
    v = np.concatenate([v, jv])
    return _symmetric_graph(f"road(x{scale:g})", n, u, v, rng)


def star_hubs(scale: float = 1.0, *, hubs: int = 2, seed: int = 5) -> Graph:
    """Hub-adversarial graph: ``hubs`` nodes adjacent to every other node
    (hub degree capped at the block limit), symmetric — all the work sits
    in a handful of enormous child kernels."""
    if hubs < 1:
        raise ValueError(f"star needs at least one hub, got {hubs}")
    n = max(96, min(int(900 * scale), MAX_BLOCK_DEGREE + 1))
    hubs = min(hubs, n - 1)
    rng = np.random.default_rng(seed)
    hub = np.repeat(np.arange(hubs), n - hubs)
    leaf = np.tile(np.arange(hubs, n), hubs)
    # hubs also form a clique so the graph stays connected at hubs > 1
    hu, hv = np.triu_indices(hubs, k=1)
    u = np.concatenate([hub, hu])
    v = np.concatenate([leaf, hv])
    return _symmetric_graph(f"star(x{scale:g})", n, u, v, rng)


def chain_spider(scale: float = 1.0, *, depth: int = 40,
                 seed: int = 6) -> Graph:
    """A spider: ``width`` chains of ``depth`` nodes hanging off node 0,
    symmetric. Diameter stays ``2 * depth`` regardless of scale, so
    iterative apps converge, while each work item is maximally serial."""
    if depth < 1:
        raise ValueError(f"chain depth must be >= 1, got {depth}")
    width = max(4, min(int(30 * scale), MAX_BLOCK_DEGREE))
    n = 1 + width * depth
    rng = np.random.default_rng(seed)
    heads = 1 + depth * np.arange(width)
    links = np.arange(1, n)
    links = links[(links - 1) % depth != depth - 1]  # chain-internal
    u = np.concatenate([np.zeros(width, dtype=np.int64), links])
    v = np.concatenate([heads, links + 1])
    return _symmetric_graph(f"chain(x{scale:g})", n, u, v, rng)


def bimodal_graph(scale: float = 1.0, *, low: int = 4, high: int = 192,
                  high_fraction: float = 0.05, seed: int = 7) -> Graph:
    """Two-mode degree mixture: most nodes hold ~``low`` edges (below the
    delegation thresholds), a ``high_fraction`` minority ~``high`` (well
    above), directed with preferential-attachment targets."""
    if low < 1 or high < 1:
        raise ValueError(
            f"bimodal degree modes must be >= 1, got low={low} "
            f"high={high}")
    rng = np.random.default_rng(seed)
    n = max(96, int(1000 * scale))
    degrees = np.maximum(1, rng.poisson(low, n)).astype(np.int64)
    heavy = rng.random(n) < high_fraction
    # both bounds clamp to the block limit so an oversized 'high' still
    # samples a non-empty range instead of tripping numpy's low >= high
    lo = min(high // 2 + 1, MAX_BLOCK_DEGREE)
    hi = min(2 * high, MAX_BLOCK_DEGREE)
    degrees[heavy] = rng.integers(lo, hi + 1, size=int(heavy.sum()))
    return _csr_from_degree_targets(f"bimodal(x{scale:g})", rng, degrees)


# -- tree builders -------------------------------------------------------------


def grow_tree(name: str, rng, depth: int, fanout_lo: int, fanout_hi: int,
              fertile_fraction: float, level_budget: int) -> Tree:
    """Level-by-level tree growth with a per-level node budget.

    Canonical home of the former ``repro.data.treegen._grow`` (the
    module-level generators there are deprecated shims onto the registry
    entries below); see that module's docstring for the scaling
    argument.
    """
    children_lists: list[list[int]] = [[]]
    frontier = [0]
    next_id = 1
    avg_fanout = (fanout_lo + fanout_hi) / 2
    for level in range(1, depth + 1):
        if level == 1:
            fertile = list(frontier)
        else:
            mask = rng.random(len(frontier)) < fertile_fraction
            fertile = [u for u, keep in zip(frontier, mask) if keep]
        max_fertile = max(1, int(level_budget / avg_fanout))
        if len(fertile) > max_fertile:
            picks = rng.choice(len(fertile), size=max_fertile, replace=False)
            fertile = [fertile[i] for i in sorted(picks)]
        new_frontier: list[int] = []
        for u in fertile:
            fanout = int(rng.integers(fanout_lo, fanout_hi + 1))
            kids = list(range(next_id, next_id + fanout))
            next_id += fanout
            children_lists[u] = kids
            children_lists.extend([] for _ in kids)
            new_frontier.extend(kids)
        frontier = new_frontier
        if not frontier:
            break
    n = next_id
    counts = np.array([len(children_lists[u]) for u in range(n)],
                      dtype=np.int64)
    child_ptr = np.zeros(n + 1, dtype=np.int64)
    child_ptr[1:] = np.cumsum(counts)
    child_idx = np.concatenate(
        [np.array(children_lists[u], dtype=np.int32) for u in range(n)
         if children_lists[u]]
    ) if counts.sum() else np.zeros(0, dtype=np.int32)
    values = rng.integers(1, 100, size=n).astype(np.int32)
    tree = Tree(name, child_ptr, child_idx.astype(np.int32), values, depth)
    tree.validate()
    return tree


def tree_dataset1(scale: float = 1.0, *, seed: int = 11) -> Tree:
    """Paper dataset1, scaled: depth-5, fanout ratio 2 (paper: 128-256,
    here 28-56), only half of the non-leaf nodes have children."""
    rng = np.random.default_rng(seed)
    lo = max(2, int(28 * scale))
    hi = max(lo + 1, int(56 * scale))
    budget = max(64, int(1500 * scale))
    return grow_tree(f"tree_dataset1(x{scale:g})", rng, depth=5,
                     fanout_lo=lo, fanout_hi=hi, fertile_fraction=0.5,
                     level_budget=budget)


def tree_dataset2(scale: float = 1.0, *, seed: int = 12) -> Tree:
    """Paper dataset2, scaled: depth-5, fanout ratio 4 (paper: 32-128,
    here 16-64), all non-leaf nodes have children."""
    rng = np.random.default_rng(seed)
    lo = max(2, int(16 * scale))
    hi = max(lo + 1, int(64 * scale))
    budget = max(64, int(1200 * scale))
    return grow_tree(f"tree_dataset2(x{scale:g})", rng, depth=5,
                     fanout_lo=lo, fanout_hi=hi, fertile_fraction=1.0,
                     level_budget=budget)


def tree_skewed(scale: float = 1.0, *, seed: int = 13) -> Tree:
    """Depth-5 tree with extreme sibling-fanout variance (4..160) and
    sparse fertility — the warp-imbalance adversary."""
    rng = np.random.default_rng(seed)
    hi = max(6, int(160 * scale))
    budget = max(64, int(1400 * scale))
    return grow_tree(f"tree_skewed(x{scale:g})", rng, depth=5,
                     fanout_lo=4, fanout_hi=hi, fertile_fraction=0.3,
                     level_budget=budget)


def tree_balanced(scale: float = 1.0, *, seed: int = 14) -> Tree:
    """Depth-5 tree with one exact fanout everywhere and full fertility —
    no imbalance for consolidation to recover."""
    rng = np.random.default_rng(seed)
    fanout = max(4, int(32 * scale))
    budget = max(64, int(1300 * scale))
    return grow_tree(f"tree_balanced(x{scale:g})", rng, depth=5,
                     fanout_lo=fanout, fanout_hi=fanout,
                     fertile_fraction=1.0, level_budget=budget)


def tree_deep(scale: float = 1.0, *, seed: int = 15) -> Tree:
    """Depth-9 tree with modest fanout — recursion- (nesting-) heavy
    rather than fanout-heavy."""
    rng = np.random.default_rng(seed)
    lo = max(2, int(6 * scale))
    hi = max(lo + 1, int(20 * scale))
    budget = max(48, int(500 * scale))
    return grow_tree(f"tree_deep(x{scale:g})", rng, depth=9,
                     fanout_lo=lo, fanout_hi=hi, fertile_fraction=0.65,
                     level_budget=budget)


# -- registration --------------------------------------------------------------

GENERATOR_WORKLOADS = (
    WorkloadSpec(
        "citeseer", "graph",
        "heavy-tailed citation-network stand-in (paper: CiteSeer)",
        lambda scale, seed: citeseer_like(scale, seed=seed),
        defaults={"seed": 1}),
    WorkloadSpec(
        "kron", "graph",
        "R-MAT/Kronecker hub-dominated graph (paper: kron_g500-logn16)",
        lambda scale, seed: kron_like(scale, seed=seed),
        defaults={"seed": 2}, symmetric=True),
    WorkloadSpec(
        "uniform", "graph",
        "low-skew control graph with one fixed out-degree",
        lambda scale, seed, avg_degree: uniform_graph(
            scale, seed=seed, avg_degree=avg_degree),
        defaults={"seed": 3, "avg_degree": 8}),
    WorkloadSpec(
        "road", "graph",
        "road-like lattice: degree 2-4 almost everywhere, sparse "
        "higher-degree interchanges",
        lambda scale, seed: road_grid(scale, seed=seed),
        defaults={"seed": 4}, symmetric=True, deep=True),
    WorkloadSpec(
        "star", "graph",
        "hub-adversarial graph: two hubs adjacent to every node "
        "(block-limit-capped)",
        lambda scale, hubs, seed: star_hubs(scale, hubs=hubs, seed=seed),
        defaults={"hubs": 2, "seed": 5}, symmetric=True),
    WorkloadSpec(
        "chain", "graph",
        "spider of long chains off one hub: maximal serial depth at "
        "bounded diameter",
        lambda scale, depth, seed: chain_spider(scale, depth=depth,
                                                seed=seed),
        defaults={"depth": 40, "seed": 6}, symmetric=True, deep=True),
    WorkloadSpec(
        "bimodal", "graph",
        "bimodal degree mixture: a sea of tiny rows plus a heavy "
        "above-threshold minority",
        lambda scale, low, high, seed: bimodal_graph(
            scale, low=low, high=high, seed=seed),
        defaults={"low": 4, "high": 192, "seed": 7}),
    WorkloadSpec(
        "tree1", "tree",
        "paper tree dataset1: depth 5, fanout ratio 2, half-fertile",
        lambda scale, seed: tree_dataset1(scale, seed=seed),
        defaults={"seed": 11}),
    WorkloadSpec(
        "tree2", "tree",
        "paper tree dataset2: depth 5, fanout ratio 4, fully fertile",
        lambda scale, seed: tree_dataset2(scale, seed=seed),
        defaults={"seed": 12}),
    WorkloadSpec(
        "tree-skewed", "tree",
        "extreme sibling-fanout variance: the warp-imbalance adversary",
        lambda scale, seed: tree_skewed(scale, seed=seed),
        defaults={"seed": 13}),
    WorkloadSpec(
        "tree-balanced", "tree",
        "one exact fanout everywhere: nothing for consolidation to "
        "rebalance",
        lambda scale, seed: tree_balanced(scale, seed=seed),
        defaults={"seed": 14}),
    WorkloadSpec(
        "tree-deep", "tree",
        "depth-9 modest-fanout tree: recursion-depth-heavy",
        lambda scale, seed: tree_deep(scale, seed=seed),
        defaults={"seed": 15}),
)

for _spec in GENERATOR_WORKLOADS:
    register_workload(_spec)

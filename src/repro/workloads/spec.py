"""Workload specs and the named-workload registry.

A :class:`WorkloadSpec` decouples *what data an experiment runs on* from
the app that runs it: every dataset the project can produce — synthetic
generators and real-format files alike — is registered here under a
short name, with declared structural properties (graph vs. tree,
symmetry) that the runner validates against each app's requirements
before anything executes.

Workload *references* are strings: a bare registry name (``"star"``) or
a parameterized form (``"citeseer(seed=31)"``). References canonicalize
— parameters equal to the spec's defaults are dropped and the rest are
key-sorted — so two spellings of the same dataset share one cache entry
everywhere (runner memory cache, on-disk run store, dataset cache,
tuned-config registry). The registry mirrors the consolidation-strategy
and search-algorithm registries: registering a spec makes it reachable
end-to-end (CLI ``--workload``, ``repro workloads``, the sensitivity
sweep, the tuner) without touching any of them.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

#: structural kinds the apps consume (App.kind must match)
KINDS = ("graph", "tree")

_REF_RE = re.compile(r"^([A-Za-z0-9_][A-Za-z0-9_-]*)(?:\((.*)\))?$")


@dataclass
class WorkloadSpec:
    """One named dataset family.

    ``builder(scale, **params)`` materializes the dataset; ``defaults``
    documents the accepted parameters and their default values (unknown
    parameters are rejected at reference-resolution time). ``symmetric``
    declares that every materialization is an undirected (symmetrized)
    graph — apps whose algorithms rely on symmetry (graph coloring's
    independent-set argument, BFS-Rec's level check) refuse asymmetric
    workloads up front instead of failing verification later. ``source``
    points at the backing file for real-format loader workloads; its
    content participates in the dataset-cache key.
    """

    name: str
    kind: str
    description: str
    builder: Callable
    defaults: dict = field(default_factory=dict)
    symmetric: bool = False
    #: True when the dataset's level count from the natural root can
    #: exceed the device's dynamic-parallelism nesting budget (24):
    #: lattices grow with scale, chains exceed it at their default
    #: depth. Level-recursive apps (BFS-Rec) refuse such workloads
    #: conservatively (a parameterization that would happen to fit is
    #: still rejected; the flag is declarative, not measured)
    deep: bool = False
    source: Optional[Path] = None

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(
                f"workload {self.name!r}: kind must be one of "
                f"{', '.join(KINDS)}, got {self.kind!r}")
        if not _REF_RE.match(self.name) or "(" in self.name:
            raise ValueError(f"invalid workload name {self.name!r}")

    # -- parameters ------------------------------------------------------------

    def resolve_params(self, params: Optional[dict] = None) -> dict:
        """Defaults overlaid with ``params``; unknown keys are rejected."""
        resolved = dict(self.defaults)
        for key, value in (params or {}).items():
            if key not in self.defaults:
                known = ", ".join(sorted(self.defaults)) or "none"
                raise ValueError(
                    f"workload {self.name!r} takes no parameter {key!r} "
                    f"(known: {known})")
            resolved[key] = value
        return resolved

    def canonical(self, params: Optional[dict] = None) -> str:
        """The canonical reference string for this spec + parameters.

        Parameters equal to the defaults are dropped and the remainder
        key-sorted, so every spelling of the same dataset collapses to
        one string — the property the cache-key argument in DESIGN.md
        §12 relies on.
        """
        resolved = self.resolve_params(params)
        extras = {k: v for k, v in sorted(resolved.items())
                  if v != self.defaults[k]}
        if not extras:
            return self.name
        inner = ",".join(f"{k}={_format_value(v)}" for k, v in extras.items())
        return f"{self.name}({inner})"

    # -- materialization -------------------------------------------------------

    def build(self, scale: float = 1.0, params: Optional[dict] = None):
        """Materialize (and validate) the dataset at a scale."""
        dataset = self.builder(scale, **self.resolve_params(params))
        dataset.validate()
        return dataset

    def source_fingerprint(self) -> Optional[str]:
        """Streaming sha256 of the backing file (None when generated);
        hashed in fixed-size chunks so multi-gigabyte dumps never sit in
        memory — the same bounded-memory contract as the loaders."""
        if self.source is None:
            return None
        import hashlib

        digest = hashlib.sha256()
        with self.source.open("rb") as fh:
            for chunk in iter(lambda: fh.read(1 << 20), b""):
                digest.update(chunk)
        return digest.hexdigest()

    def summary(self) -> str:
        sym = ", symmetric" if self.symmetric else ""
        dp = ", deep" if self.deep else ""
        src = ", file-backed" if self.source is not None else ""
        return f"[{self.kind}{sym}{dp}{src}] {self.description}"


def _format_value(value) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _parse_value(text: str):
    text = text.strip()
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        raise ValueError(
            f"workload parameter value {text!r} is not a number; "
            "parameters are numeric (e.g. seed=3, scale knobs)") from None


def parse_workload(ref: str) -> tuple[str, dict]:
    """Split a workload reference into ``(name, params)``.

    Accepts ``"star"`` and ``"citeseer(seed=31,...)"``; values parse as
    int, then float — non-numeric values are rejected (every registered
    parameter is a numeric knob, and rejecting early keeps typos out of
    the builders).
    """
    match = _REF_RE.match(ref.strip())
    if not match:
        raise ValueError(
            f"malformed workload reference {ref!r}; expected "
            "'name' or 'name(key=value,...)'")
    name, inner = match.group(1), match.group(2)
    params: dict = {}
    if inner:
        for item in inner.split(","):
            if "=" not in item:
                raise ValueError(
                    f"malformed workload parameter {item!r} in {ref!r}; "
                    "expected key=value")
            key, value = item.split("=", 1)
            key = key.strip()
            if not key:
                raise ValueError(
                    f"malformed workload parameter {item!r} in {ref!r}; "
                    "expected key=value")
            params[key] = _parse_value(value)
    return name, params


# -- registry ------------------------------------------------------------------

#: name -> spec; insertion order is the presentation order of
#: ``repro workloads list`` and the sensitivity sweep
_REGISTRY: dict[str, WorkloadSpec] = {}


def register_workload(spec: WorkloadSpec,
                      replace: bool = False) -> WorkloadSpec:
    """Add a workload spec to the registry (validated); returns it."""
    if not isinstance(spec, WorkloadSpec):
        raise TypeError(f"expected a WorkloadSpec instance, got {spec!r}")
    if spec.name in _REGISTRY and not replace:
        raise ValueError(f"workload {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def unregister_workload(name: str) -> None:
    """Remove a workload (test/plugin cleanup)."""
    if name not in _REGISTRY:
        raise KeyError(f"workload {name!r} is not registered")
    del _REGISTRY[name]


def get_workload(name: str) -> WorkloadSpec:
    """Look up a spec by bare name (no parameter suffix)."""
    spec = _REGISTRY.get(name)
    if spec is None:
        raise KeyError(
            f"unknown workload {name!r}; available: "
            f"{', '.join(available_workloads())}")
    return spec


def available_workloads(kind: Optional[str] = None) -> tuple[str, ...]:
    """Registered workload names (optionally one kind), in order."""
    return tuple(name for name, spec in _REGISTRY.items()
                 if kind is None or spec.kind == kind)


def resolve_workload(ref: str) -> tuple[WorkloadSpec, dict]:
    """A reference string resolved to ``(spec, full params)``."""
    name, params = parse_workload(ref)
    spec = get_workload(name)
    return spec, spec.resolve_params(params)


def canonical_workload(ref: str) -> str:
    """Canonicalize any reference spelling (see :meth:`WorkloadSpec.canonical`)."""
    name, params = parse_workload(ref)
    return get_workload(name).canonical(params)


# -- materialization entry points ---------------------------------------------


def materialize(ref: str, scale: float = 1.0, cache=None):
    """Materialize a workload reference, optionally through a
    :class:`~repro.workloads.cache.DatasetCache`."""
    spec, params = resolve_workload(ref)
    if cache is not None:
        from .cache import dataset_key

        key = dataset_key(spec, params, scale)
        dataset = cache.get(key)
        if dataset is None:
            dataset = spec.build(scale, params)
            cache.put(key, dataset)
        return dataset
    return spec.build(scale, params)


def incompatibility(app, spec: WorkloadSpec) -> Optional[str]:
    """Why an app cannot run a workload (None when it can).

    Checks the app's declared structural requirements: dataset kind,
    symmetry (GC, BFS-Rec), and bounded depth (BFS-Rec's level
    recursion must fit the device's DP nesting limit).
    """
    if spec.kind != app.kind:
        return (f"workload {spec.name!r} is a {spec.kind} dataset but "
                f"{app.label} consumes {app.kind}s; pick one of: "
                f"{', '.join(available_workloads(app.kind))}")
    if getattr(app, "requires_symmetric", False) and not spec.symmetric:
        symmetric = [n for n in available_workloads(app.kind)
                     if get_workload(n).symmetric]
        return (f"{app.label} requires a symmetric (undirected) graph, "
                f"but workload {spec.name!r} is not declared symmetric; "
                f"pick one of: {', '.join(symmetric)}")
    if getattr(app, "requires_shallow", False) and spec.deep:
        return (f"{app.label} recurses once per level and workload "
                f"{spec.name!r} is declared deep (its level count can "
                "exceed the device's dynamic-parallelism nesting "
                "limit), so it is refused conservatively")
    return None


def canonical_for_app(app, ref: Optional[str]) -> Optional[str]:
    """Canonicalize a reference for one app, folding the app's own
    :attr:`default_workload` onto ``None``.

    This is the load-bearing cache-compatibility rule of DESIGN.md §12
    (an omitted or default workload must key exactly like PR 3), shared
    by the experiment runner and the tuner so run keys and tuned keys
    can never fork.
    """
    if ref is None:
        return None
    canonical = canonical_workload(ref)
    if canonical == canonical_workload(app.default_workload):
        return None
    return canonical


def materialize_for_app(app, ref: str, scale: float = 1.0, cache=None):
    """Materialize a workload for one app, enforcing the app's declared
    structural requirements (kind, symmetry, depth) *before* building."""
    spec, params = resolve_workload(ref)
    reason = incompatibility(app, spec)
    if reason is not None:
        raise ValueError(reason)
    return materialize(spec.canonical(params), scale, cache=cache)

"""``repro.workloads`` — the dataset/scenario subsystem.

Every headline effect the paper measures (warp-efficiency recovery,
child-launch counts, the KC_X trade-off) is driven by *input shape*:
degree skew, hub size, tree balance. This package makes input shape a
first-class, swappable axis instead of a per-app constant:

* :mod:`~repro.workloads.spec` — :class:`WorkloadSpec` and the named
  registry; references like ``"citeseer(seed=31)"`` canonicalize so
  every spelling of one dataset shares one cache entry;
* :mod:`~repro.workloads.generators` — the synthetic families
  (absorbing :mod:`repro.data.graphgen`/``treegen`` plus road/star/
  chain/bimodal graphs and skewed/balanced/deep tree variants);
* :mod:`~repro.workloads.loaders` — real-format loaders (DIMACS ``.gr``,
  Matrix Market ``.mtx``, SNAP edge lists), gzip-aware and chunk-
  streamed, with a checked-in fixture registered as ``usa-tiny``;
* :mod:`~repro.workloads.cache` — a content-addressed on-disk
  :class:`DatasetCache` beside the run ResultStore.

Consumers: ``RunSpec.workload`` / ``repro run --workload`` (the runner
validates kind and symmetry per app and canonicalizes each app's
default workload onto ``None``, preserving existing cache keys —
DESIGN.md §12), ``repro tune --workload`` (tuned configs are stored per
workload), ``repro workloads list|gen|info``, and the
``repro sensitivity`` sweep (:mod:`repro.experiments.input_sensitivity`).
"""

# spec first: it has no dependency on repro.experiments, so the names
# below are bound even if importing .cache re-enters this package
# through the experiments import chain
from .spec import (  # noqa: F401
    KINDS,
    WorkloadSpec,
    available_workloads,
    canonical_for_app,
    canonical_workload,
    get_workload,
    incompatibility,
    materialize,
    materialize_for_app,
    parse_workload,
    register_workload,
    resolve_workload,
    unregister_workload,
)
from .cache import (  # noqa: F401
    DATASET_FORMAT,
    DatasetCache,
    dataset_key,
    default_dataset_cache_dir,
)

# importing these modules populates the registry
from . import generators  # noqa: E402,F401
from . import loaders  # noqa: E402,F401
from .loaders import (  # noqa: F401
    file_workload,
    load_dimacs_gr,
    load_graph,
    load_matrix_market,
    load_snap_edgelist,
)

"""Real-format graph loaders: DIMACS ``.gr``, Matrix Market ``.mtx``,
SNAP edge lists — all gzip-aware and streamed in bounded chunks.

The paper evaluates on DIMACS-challenge datasets (CiteSeer,
kron_g500-logn16); these loaders let the reproduction run on the real
files (or any graph in the three de-facto exchange formats) instead of
only the synthetic stand-ins. Parsing accumulates fixed-size line
chunks into NumPy arrays rather than one giant Python list, so memory
stays proportional to the chunk size plus the final edge arrays — the
multi-gigabyte SNAP dumps stream through without a per-line object per
edge retained.

A tiny checked-in DIMACS fixture (``fixtures/usa_tiny.gr``, a symmetric
road fragment) is registered as the ``usa-tiny`` workload so the
file-loading path is exercised end-to-end by default — CLI, runner,
dataset cache, CI — without downloading anything.
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import Iterable, Iterator, Optional

import numpy as np

from ..data.structures import Graph
from .spec import WorkloadSpec, register_workload

#: lines parsed per chunk; bounds transient memory during streaming
CHUNK_LINES = 65536

#: gzip magic bytes (files are sniffed, not trusted by suffix alone)
_GZIP_MAGIC = b"\x1f\x8b"


def open_dataset_text(path) -> io.TextIOBase:
    """Open a dataset file for line iteration, transparently gunzipping
    (by magic bytes, so a mislabeled ``.gz`` still loads)."""
    path = Path(path)
    with path.open("rb") as probe:
        magic = probe.read(2)
    if magic == _GZIP_MAGIC:
        return io.TextIOWrapper(gzip.open(path, "rb"), encoding="utf-8")
    return path.open("r", encoding="utf-8")


def _chunked_rows(rows: Iterable[tuple], width: int,
                  dtype=np.int64) -> Iterator[np.ndarray]:
    """Accumulate parsed rows into ``(CHUNK_LINES, width)`` arrays."""
    buf: list[tuple] = []
    for row in rows:
        buf.append(row)
        if len(buf) >= CHUNK_LINES:
            yield np.array(buf, dtype=dtype).reshape(-1, width)
            buf = []
    if buf:
        yield np.array(buf, dtype=dtype).reshape(-1, width)


def _collect(chunks: Iterator[np.ndarray], width: int) -> np.ndarray:
    arrays = list(chunks)
    if not arrays:
        return np.zeros((0, width), dtype=np.int64)
    return np.concatenate(arrays)


def _csr_from_edges(name: str, n: int, u: np.ndarray, v: np.ndarray,
                    weights: np.ndarray) -> Graph:
    """Sort edges by (source, target) and build a validated CSR."""
    order = np.lexsort((v, u))
    u, v, weights = u[order], v[order], weights[order]
    row_ptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(row_ptr, u + 1, 1)
    row_ptr = np.cumsum(row_ptr).astype(np.int64)
    g = Graph(name, row_ptr, v.astype(np.int32), weights)
    g.validate()
    return g


# -- DIMACS .gr ----------------------------------------------------------------


def load_dimacs_gr(path, name: Optional[str] = None) -> Graph:
    """DIMACS shortest-path format: ``p sp <n> <m>`` then ``a <u> <v> <w>``
    arc lines, 1-indexed. Road releases list both arc directions, so the
    loaded graph is as symmetric as the file says it is."""
    path = Path(path)
    n = None

    def rows():
        nonlocal n
        with open_dataset_text(path) as fh:
            for line in fh:
                kind = line[:1]
                if kind == "a":
                    _, u, v, w = line.split()
                    yield (int(u) - 1, int(v) - 1, int(w))
                elif kind == "p":
                    parts = line.split()
                    n = int(parts[2])
                # 'c' comment lines fall through

    edges = _collect(_chunked_rows(rows(), 3), 3)
    if n is None:
        raise ValueError(f"{path}: missing DIMACS 'p sp <n> <m>' line")
    if len(edges) and (edges[:, :2].min() < 0 or edges[:, :2].max() >= n):
        raise ValueError(f"{path}: arc endpoint out of range 1..{n}")
    return _csr_from_edges(name or path.stem, n,
                           edges[:, 0], edges[:, 1],
                           edges[:, 2].astype(np.int32))


# -- Matrix Market .mtx --------------------------------------------------------


def load_matrix_market(path, name: Optional[str] = None) -> Graph:
    """Matrix Market coordinate format (``%%MatrixMarket matrix
    coordinate <field> <symmetry>``), 1-indexed. ``pattern`` entries get
    unit weights; ``symmetric``/``skew-symmetric`` files mirror their
    off-diagonal entries. The matrix must be square (it is an adjacency
    /system matrix for the graph apps)."""
    path = Path(path)
    field, symmetry = "real", "general"
    shape: Optional[tuple[int, int]] = None

    def rows():
        nonlocal field, symmetry, shape
        with open_dataset_text(path) as fh:
            header = fh.readline()
            if not header.startswith("%%MatrixMarket"):
                raise ValueError(f"{path}: missing %%MatrixMarket header")
            parts = header.split()
            if len(parts) < 5 or parts[2] != "coordinate":
                raise ValueError(
                    f"{path}: only 'matrix coordinate' files are supported")
            field, symmetry = parts[3], parts[4]
            if field == "complex":
                raise ValueError(
                    f"{path}: complex-valued matrices have no graph-"
                    "weight interpretation here; convert to real first")
            for line in fh:
                if line.startswith("%") or not line.strip():
                    continue
                if shape is None:
                    rows_, cols, _nnz = line.split()
                    shape = (int(rows_), int(cols))
                    continue
                parts = line.split()
                i, j = int(parts[0]) - 1, int(parts[1]) - 1
                if field == "pattern":
                    w = 1.0
                else:
                    w = float(parts[2])
                yield (i, j, w)

    edges = _collect(_chunked_rows(rows(), 3, dtype=np.float64), 3)
    if shape is None:
        raise ValueError(f"{path}: missing size line")
    if shape[0] != shape[1]:
        raise ValueError(
            f"{path}: adjacency matrix must be square, got {shape}")
    n = shape[0]
    u = edges[:, 0].astype(np.int64)
    v = edges[:, 1].astype(np.int64)
    w = edges[:, 2]
    if symmetry in ("symmetric", "skew-symmetric", "hermitian"):
        # the stored triangle implies the mirror entries; skew-symmetry
        # means a_ji = -a_ij (hermitian == symmetric for real fields,
        # and the complex field is rejected by the float parse above)
        off = u != v
        mirrored = -w[off] if symmetry == "skew-symmetric" else w[off]
        u, v, w = (np.concatenate([u, v[off]]),
                   np.concatenate([v, u[off]]),
                   np.concatenate([w, mirrored]))
    if len(u) and (min(u.min(), v.min()) < 0 or max(u.max(), v.max()) >= n):
        raise ValueError(f"{path}: entry index out of range 1..{n}")
    if field == "real":
        weights = w.astype(np.float32)
    else:
        weights = w.astype(np.int32)
    return _csr_from_edges(name or path.stem, n, u, v, weights)


# -- SNAP edge lists -----------------------------------------------------------


def load_snap_edgelist(path, name: Optional[str] = None) -> Graph:
    """SNAP-style whitespace edge list (``#`` comments, one ``u v`` pair
    per line, arbitrary node ids). Ids are compacted to ``0..n-1`` in
    sorted order; edges get unit weights."""
    path = Path(path)

    def rows():
        with open_dataset_text(path) as fh:
            for line in fh:
                if line.startswith(("#", "%")) or not line.strip():
                    continue
                u, v = line.split()[:2]
                yield (int(u), int(v))

    edges = _collect(_chunked_rows(rows(), 2), 2)
    ids, compact = np.unique(edges[:, :2], return_inverse=True)
    compact = compact.reshape(-1, 2)
    n = len(ids)
    weights = np.ones(len(compact), dtype=np.int32)
    return _csr_from_edges(name or path.stem, max(n, 1),
                           compact[:, 0], compact[:, 1], weights)


# -- dispatch + file-backed workloads ------------------------------------------

_LOADERS = {
    ".gr": load_dimacs_gr,
    ".mtx": load_matrix_market,
}


def load_graph(path, name: Optional[str] = None) -> Graph:
    """Load any supported format, dispatched on the (ungzipped) suffix;
    unknown suffixes are treated as SNAP edge lists."""
    path = Path(path)
    suffixes = [s for s in path.suffixes if s != ".gz"]
    loader = _LOADERS.get(suffixes[-1] if suffixes else "",
                          load_snap_edgelist)
    return loader(path, name=name)


def file_workload(name: str, path, *, description: str,
                  symmetric: bool = False) -> WorkloadSpec:
    """A :class:`WorkloadSpec` backed by a graph file (``scale`` is
    ignored: the file *is* the dataset). The file's content participates
    in the dataset-cache key, so edits invalidate cached parses."""
    path = Path(path)
    return WorkloadSpec(
        name, "graph", description,
        lambda scale: load_graph(path, name=name),
        symmetric=symmetric, source=path)


#: directory of datasets shipped with the package
FIXTURE_DIR = Path(__file__).parent / "fixtures"

register_workload(file_workload(
    "usa-tiny", FIXTURE_DIR / "usa_tiny.gr",
    description="checked-in DIMACS .gr fixture: a tiny symmetric road "
                "fragment exercising the loader path end-to-end",
    symmetric=True))

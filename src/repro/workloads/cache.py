"""Content-addressed on-disk cache for materialized datasets.

Workload sweeps (``repro sensitivity``, per-workload tuning) materialize
many graphs and trees per invocation; generating a scaled Kronecker
graph costs real time, and every worker process would otherwise pay it
again. This cache stores pickled :class:`~repro.data.structures.Graph`
/:class:`~repro.data.structures.Tree` objects **beside the run
ResultStore** (``<cache-dir>/datasets/``), addressed by everything that
determines the materialization: the canonical workload name, the fully
resolved parameters, the scale, the backing file's content hash (for
loader workloads), the dataset-format number and the package version —
so a generator change invalidates cached datasets exactly the way a
cost-model change invalidates cached runs.

Storage reuses :class:`~repro.experiments.store.ResultStore` (sharded
atomic pickles, lazy directory creation, corrupt-entry eviction): the
semantics wanted here are identical, only the payload differs.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from ..experiments.store import ResultStore, default_cache_dir

#: bump to invalidate every cached dataset on a materialization change
DATASET_FORMAT = 1

#: subdirectory of the cache dir holding dataset pickles
DATASET_SUBDIR = "datasets"


def default_dataset_cache_dir(cache_dir=None) -> Path:
    """Dataset-cache location for a cache directory (default: beside the
    run store under :func:`~repro.experiments.store.default_cache_dir`)."""
    root = Path(cache_dir) if cache_dir else default_cache_dir()
    return root / DATASET_SUBDIR


def dataset_key(spec, params: dict, scale: float) -> str:
    """Stable content address for one materialization.

    File-backed workloads hash the backing file's bytes instead of the
    scale (the file is the dataset; scale is ignored by its builder), so
    every scale shares one cached parse and edits force a reload.
    """
    from .. import __version__

    source = spec.source_fingerprint()
    payload = {
        "format": DATASET_FORMAT,
        "version": __version__,
        "workload": spec.canonical(params),
        "kind": spec.kind,
        "params": {k: params[k] for k in sorted(params)},
        "scale": scale if source is None else None,
        "source": source,
    }
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()


class DatasetCache(ResultStore):
    """Filesystem-backed map from dataset key to pickled Graph/Tree."""

    def __repr__(self) -> str:
        return f"DatasetCache({str(self.root)!r})"

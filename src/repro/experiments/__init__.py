"""Experiment harnesses regenerating every figure of the paper's
evaluation (§V). One module per figure; all share the memoized
:class:`~repro.experiments.runner.ExperimentRunner` so Figs. 7-10 profile
the same executions, exactly as the paper does."""

from . import (  # noqa: F401
    ablation_threshold,
    fig5_allocators,
    fig6_kernel_config,
    fig7_overall,
    fig8_warp_efficiency,
    fig9_occupancy,
    fig10_dram,
)
from .reporting import PaperClaim, Table, bar_chart, geomean  # noqa: F401
from .runner import ExperimentRunner  # noqa: F401

#: figure id -> module (used by the CLI and the benchmark harness)
FIGURES = {
    "fig5": fig5_allocators,
    "fig6": fig6_kernel_config,
    "fig7": fig7_overall,
    "fig8": fig8_warp_efficiency,
    "fig9": fig9_occupancy,
    "fig10": fig10_dram,
}

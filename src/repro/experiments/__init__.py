"""Experiment harnesses regenerating every figure of the paper's
evaluation (§V), one module per figure.

Execution is organized in three layers (README.md "Reproducing the
figures"; DESIGN.md §8):

* **work plans** (:mod:`~repro.experiments.plan`) — each figure module
  declares its run matrix up front as a ``plan(runner)`` of hashable
  :class:`~repro.experiments.plan.RunSpec` values, so ``repro all`` can
  union and deduplicate every requested figure's runs before anything
  executes (Figs. 7-10 profile the *same* executions, exactly as the
  paper does);
* **the runner** (:mod:`~repro.experiments.runner`) — memoizes runs by
  run-spec value, fans cache misses across a process pool
  (``repro all --jobs N``), and merges results deterministically;
* **the result store** (:mod:`~repro.experiments.store`) — a
  content-addressed on-disk cache keyed by app/variant/allocator/config,
  the dataset fingerprint and every cost-model field, so repeated figure
  regeneration is warm-start across invocations.

Figure modules only ever call :meth:`ExperimentRunner.run`; with a warm
cache they render without triggering a single simulation.
"""

from . import (  # noqa: F401
    ablation_granularity,
    ablation_threshold,
    fig5_allocators,
    fig6_kernel_config,
    fig7_overall,
    fig8_warp_efficiency,
    fig9_occupancy,
    fig10_dram,
    input_sensitivity,
    tuned_vs_paper,
)
from .plan import RunSpec, WorkPlan, union  # noqa: F401
from .reporting import PaperClaim, Table, bar_chart, geomean  # noqa: F401
from .runner import ExperimentRunner, RunStats  # noqa: F401
from .store import ResultStore, default_cache_dir  # noqa: F401

#: figure id -> module (used by the CLI and the benchmark harness).
#: 'granularity' is the strategy ablation — not a paper figure, but it
#: rides along with `repro all` for free: its runs canonicalize onto the
#: same cache entries Figs. 7-10 already need.
FIGURES = {
    "fig5": fig5_allocators,
    "fig6": fig6_kernel_config,
    "fig7": fig7_overall,
    "fig8": fig8_warp_efficiency,
    "fig9": fig9_occupancy,
    "fig10": fig10_dram,
    "granularity": ablation_granularity,
}


def figure_plan(figures, runner: ExperimentRunner) -> WorkPlan:
    """Deduplicated union of the named figures' work plans."""
    return union(FIGURES[fig].plan(runner) for fig in figures)

"""Figure 10 — DRAM transactions relative to basic-dp.

Published: consolidation reduces total DRAM read+write transactions to
60% (warp), 34% (block) and 36% (grid) of basic-dp's, because (1) bigger
child kernels cache better, (2) fewer nested kernels means less parent
swap traffic, and (3) fewer pending launches means less virtualized-pool
management traffic. Block level can beat grid level (e.g. SpMV) because
the grid-level custom global barrier adds its own memory traffic.
"""

from __future__ import annotations

from ..apps import all_apps
from .plan import RunSpec, WorkPlan
from .reporting import PaperClaim, Table, geomean
from .runner import ExperimentRunner

VARIANTS = ("warp-level", "block-level", "grid-level")

PAPER_AVG_RATIO = {"warp-level": 0.60, "block-level": 0.34, "grid-level": 0.36}


def plan(runner: ExperimentRunner) -> WorkPlan:
    """Every run :func:`compute` will request, for batch prefetching."""
    return WorkPlan(RunSpec(app.key, variant)
                    for app in all_apps()
                    for variant in ("basic-dp",) + VARIANTS)


def compute(runner: ExperimentRunner) -> Table:
    table = Table(
        title="Fig. 10 — DRAM transactions (ratio to basic-dp)",
        columns=["app"] + list(VARIANTS),
    )
    for app in all_apps():
        base = runner.run(app.key, "basic-dp").metrics.dram_transactions
        row = [app.label]
        for variant in VARIANTS:
            m = runner.run(app.key, variant).metrics
            row.append(m.dram_transactions / base if base else float("nan"))
        table.add(*row)
    avg = ["geomean"]
    for i in range(1, len(table.columns)):
        avg.append(geomean([row[i] for row in table.rows]))
    table.add(*avg)
    table.notes.append("paper: 60% / 34% / 36% of basic-dp on average")
    return table


def claims(table: Table) -> list[PaperClaim]:
    col = table.columns.index
    avg = table.rows[-1]
    out = [PaperClaim(
        "all consolidation granularities reduce DRAM transactions",
        "60% / 34% / 36%",
        " / ".join(f"{avg[col(v)]:.0%}" for v in VARIANTS),
        all(avg[col(v)] < 1.0 for v in VARIANTS),
    )]
    out.append(PaperClaim(
        "warp-level keeps the most traffic (more launches than block/grid)",
        "warp 60% vs block 34% / grid 36%",
        f"warp {avg[col('warp-level')]:.0%} vs block "
        f"{avg[col('block-level')]:.0%} / grid {avg[col('grid-level')]:.0%}",
        avg[col("warp-level")] > avg[col("block-level")]
        and avg[col("warp-level")] > avg[col("grid-level")],
    ))
    return out


def main(runner: ExperimentRunner | None = None) -> str:
    runner = runner or ExperimentRunner()
    table = compute(runner)
    lines = [table.render(), ""]
    lines += [c.render() for c in claims(table)]
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(main())

"""Figure 8 — warp execution efficiency (and child-launch counts).

Published: consolidation cuts child-kernel launches to 0.07%-14.48% of
basic-dp's (e.g. PageRank: 6.7M -> 380k / 113k / 40), and lifts average
warp execution efficiency from 33.2% (basic-dp) to 69.3% / 75.0% / 83.1%
for warp-/block-/grid-level. Launch instructions cost more cycles than
buffer insertions, which is precisely why consolidation helps this metric.
"""

from __future__ import annotations

from ..apps import all_apps
from .plan import RunSpec, WorkPlan
from .reporting import PaperClaim, Table
from .runner import ExperimentRunner

VARIANTS = ("basic-dp", "warp-level", "block-level", "grid-level")

PAPER_AVG_WEE = {"basic-dp": 0.332, "warp-level": 0.693, "block-level": 0.750,
                 "grid-level": 0.831}


def plan(runner: ExperimentRunner) -> WorkPlan:
    """Every run :func:`compute` will request, for batch prefetching."""
    return WorkPlan(RunSpec(app.key, variant)
                    for app in all_apps() for variant in VARIANTS)


def compute(runner: ExperimentRunner) -> Table:
    table = Table(
        title="Fig. 8 — warp execution efficiency (child launches in parens)",
        columns=["app"] + [f"{v}" for v in VARIANTS],
    )
    for app in all_apps():
        row = [app.label]
        for variant in VARIANTS:
            m = runner.run(app.key, variant).metrics
            row.append(f"{m.warp_execution_efficiency:.1%} "
                       f"({m.device_launches})")
        table.add(*row)
    # averages (numeric)
    avg = ["average"]
    for variant in VARIANTS:
        vals = [runner.run(a.key, variant).metrics.warp_execution_efficiency
                for a in all_apps()]
        avg.append(f"{sum(vals) / len(vals):.1%}")
    table.add(*avg)
    table.notes.append("paper averages: 33.2% -> 69.3% / 75.0% / 83.1%")
    return table


def claims(runner: ExperimentRunner) -> list[PaperClaim]:
    apps = all_apps()
    out = []
    avg = {}
    for variant in VARIANTS:
        vals = [runner.run(a.key, variant).metrics.warp_execution_efficiency
                for a in apps]
        avg[variant] = sum(vals) / len(vals)
    out.append(PaperClaim(
        "avg warp efficiency: basic < warp < block <= grid",
        "33.2% < 69.3% < 75.0% < 83.1%",
        " < ".join(f"{avg[v]:.1%}" for v in VARIANTS),
        avg["basic-dp"] < avg["warp-level"] <= avg["block-level"] * 1.05
        and avg["block-level"] <= avg["grid-level"] * 1.1,
    ))
    reductions = []
    for a in apps:
        base = runner.run(a.key, "basic-dp").metrics.device_launches
        for variant in VARIANTS[1:]:
            launches = runner.run(a.key, variant).metrics.device_launches
            if base:
                reductions.append(launches / base)
    lo, hi = min(reductions), max(reductions)
    out.append(PaperClaim(
        "launch count reduced to a small fraction of basic-dp",
        "0.07%-14.48%", f"{lo:.2%}-{hi:.2%}", hi < 0.5,
    ))
    return out


def main(runner: ExperimentRunner | None = None) -> str:
    runner = runner or ExperimentRunner()
    table = compute(runner)
    lines = [table.render(), ""]
    lines += [c.render() for c in claims(runner)]
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(main())

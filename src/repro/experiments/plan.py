"""Work plans: declarative run matrices for the experiment harnesses.

Each figure module declares the set of application executions it needs as
a list of :class:`RunSpec` values (its ``plan()`` function). Plans are
plain data, so ``repro all`` can take the *union* of every requested
figure's plan, deduplicate it, and hand the whole batch to
:meth:`repro.experiments.runner.ExperimentRunner.prefetch` for parallel
dispatch — the figures then render against a warm cache and never trigger
a simulation themselves.

A :class:`RunSpec` is deliberately hashable plain data (no live
:class:`~repro.sim.occupancy.LaunchConfig` or dataset objects) so it can
serve directly as the in-memory cache key and be shipped to worker
processes; see DESIGN.md §8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from ..sim.occupancy import LaunchConfig
from ..sim.specs import CostModel, DeviceSpec


@dataclass(frozen=True)
class RunSpec:
    """One application execution, as plain hashable data.

    ``config`` is the ``(mode, blocks, threads)`` triple of a
    :class:`LaunchConfig` (the spec field is supplied by the runner);
    ``cost`` / ``threshold`` of ``None`` mean "the runner's / the app's
    default" and are filled in by the runner when the spec is resolved.
    ``strategy`` names a registered consolidation strategy for the
    ``'consolidated'`` variant; the runner canonicalizes built-in
    strategies onto their legacy per-granularity variants
    (:func:`repro.apps.common.canonicalize_variant`), so
    ``('consolidated', strategy='warp')`` and ``('warp-level', None)``
    share one cache entry.

    ``workload`` is a :mod:`repro.workloads` registry reference naming
    the dataset to run on (``None`` means the app's default); the runner
    canonicalizes references (parameter spellings collapse) and folds
    the app's own default workload onto ``None``, so the axis preserves
    every pre-existing cache key. ``dataset`` names a dataset explicitly
    registered on the runner (:meth:`ExperimentRunner.register_dataset`,
    e.g. Fig. 6's tree datasets) — at most one of the two may be set.

    ``backend`` names a registered execution backend
    (:mod:`repro.backends`); ``None`` means the default simulator, and
    the runner folds an explicit ``'sim'`` onto ``None`` the same way
    the workload axis folds defaults, so pre-backend cache keys are
    preserved byte-for-byte.

    ``oracle`` names a registered *exact* oracle (:mod:`repro.oracle`)
    deciding which functional-engine implementation answers the run;
    ``None`` means the default (``'sim'``, the vectorized engine), which
    an explicit ``'sim'`` folds onto. Learned oracles are tuning
    prefilters, not executable runs, and are rejected at resolve time.
    """

    app: str
    variant: str
    allocator: str = "custom"
    config: Optional[tuple] = None
    dataset: Optional[str] = None
    cost: Optional[CostModel] = None
    threshold: Optional[int] = None
    strategy: Optional[str] = None
    workload: Optional[str] = None
    backend: Optional[str] = None
    oracle: Optional[str] = None

    @classmethod
    def from_config(cls, app: str, config: "object",
                    dataset: Optional[str] = None,
                    cost: Optional[CostModel] = None) -> "RunSpec":
        """Lift a :class:`repro.run_config.RunConfig` onto a spec for
        one app (the unified entry point the runner/service/CLI share)."""
        return cls(app=app, variant=config.variant,
                   allocator=config.allocator, config=config.config,
                   dataset=dataset, cost=cost,
                   threshold=config.threshold, strategy=config.strategy,
                   workload=config.workload, backend=config.backend,
                   oracle=config.oracle)

    @staticmethod
    def config_key(config: Optional[LaunchConfig]) -> Optional[tuple]:
        """Collapse a LaunchConfig to its hashable identity."""
        if config is None:
            return None
        return (config.mode, config.blocks, config.threads)

    def launch_config(self, spec: DeviceSpec) -> Optional[LaunchConfig]:
        """Rebuild the live LaunchConfig against a device spec."""
        if self.config is None:
            return None
        mode, blocks, threads = self.config
        return LaunchConfig(mode=mode, blocks=blocks, threads=threads,
                            spec=spec)


class WorkPlan:
    """An ordered, duplicate-free collection of :class:`RunSpec`.

    Insertion order is preserved so serial execution visits runs in the
    order the figures declared them — parallel execution merges results
    by key, so completion order never affects output.
    """

    def __init__(self, specs: Iterable[RunSpec] = ()):
        self._specs: dict[RunSpec, None] = {}
        self.extend(specs)

    def add(self, spec: RunSpec) -> None:
        self._specs.setdefault(spec, None)

    def extend(self, specs: Iterable[RunSpec]) -> None:
        for spec in specs:
            self.add(spec)

    def __iter__(self) -> Iterator[RunSpec]:
        return iter(self._specs)

    def __len__(self) -> int:
        return len(self._specs)

    def __contains__(self, spec: RunSpec) -> bool:
        return spec in self._specs

    def __repr__(self) -> str:
        return f"WorkPlan({len(self)} runs)"


def union(plans: Iterable[Iterable[RunSpec]]) -> WorkPlan:
    """Union several plans (or bare RunSpec iterables), deduplicated."""
    out = WorkPlan()
    for plan in plans:
        out.extend(plan)
    return out

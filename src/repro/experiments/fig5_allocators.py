"""Figure 5 — performance of the consolidation-buffer allocators (SSSP).

The paper compares the CUDA default allocator, halloc and the customized
pre-allocated pool for warp/block/grid-level consolidation on SSSP, all
normalized to basic-dp, with the flat kernel (no-dp) as a horizontal
reference. Key published observations:

* default and halloc perform similarly in all cases;
* at block level, default/halloc fall *below* no-dp while pre-alloc is
  ~3x *above* it (a ~5.7x pre-alloc vs default gap);
* at warp level the gap widens (default ~20x slower than pre-alloc)
  because warp-level consolidation allocates a buffer per warp;
* at grid level a single buffer is allocated, so all three tie.
"""

from __future__ import annotations

from .plan import RunSpec, WorkPlan
from .reporting import PaperClaim, Table
from .runner import ExperimentRunner

APP = "sssp"
ALLOCATORS = ("default", "halloc", "custom")
ALLOC_LABEL = {"default": "default", "halloc": "halloc", "custom": "pre-alloc"}
GRANULARITIES = ("warp-level", "block-level", "grid-level")


def plan(runner: ExperimentRunner) -> WorkPlan:
    """Every run :func:`compute` will request, for batch prefetching."""
    out = WorkPlan([RunSpec(APP, "basic-dp"), RunSpec(APP, "no-dp")])
    out.extend(RunSpec(APP, gran, allocator=alloc)
               for gran in GRANULARITIES for alloc in ALLOCATORS)
    return out


def compute(runner: ExperimentRunner) -> Table:
    base = runner.run(APP, "basic-dp")
    flat = runner.run(APP, "no-dp")
    table = Table(
        title="Fig. 5 — SSSP buffer allocators (speedup over basic-dp)",
        columns=["granularity"] + [ALLOC_LABEL[a] for a in ALLOCATORS] + ["no-dp"],
    )
    flat_speedup = base.metrics.cycles / flat.metrics.cycles
    for gran in GRANULARITIES:
        row = [gran]
        for alloc in ALLOCATORS:
            run = runner.run(APP, gran, allocator=alloc)
            row.append(base.metrics.cycles / run.metrics.cycles)
        row.append(flat_speedup)
        table.add(*row)
    table.notes.append(
        "paper: default~halloc everywhere; pre-alloc ~5.7x over them at "
        "block level and ~20x at warp level; all tie at grid level"
    )
    return table


def claims(table: Table, runner: ExperimentRunner) -> list[PaperClaim]:
    rows = {row[0]: row for row in table.rows}
    out = []

    def cell(gran, col):
        return rows[gran][table.columns.index(col)]

    warp_gap = cell("warp-level", "pre-alloc") / max(cell("warp-level", "default"), 1e-9)
    block_gap = cell("block-level", "pre-alloc") / max(cell("block-level", "default"), 1e-9)
    grid_gap = cell("grid-level", "pre-alloc") / max(cell("grid-level", "default"), 1e-9)
    halloc_vs_default = cell("block-level", "halloc") / max(cell("block-level", "default"), 1e-9)
    out.append(PaperClaim(
        "pre-alloc beats default most at warp level, then block, then ties at grid",
        "20x / 5.7x / ~1x", f"{warp_gap:.1f}x / {block_gap:.1f}x / {grid_gap:.2f}x",
        warp_gap > block_gap > grid_gap and grid_gap < 1.5,
    ))
    out.append(PaperClaim(
        "default and halloc are comparable (block level)",
        "similar", f"{halloc_vs_default:.2f}x",
        0.5 < halloc_vs_default < 2.0,
    ))
    out.append(PaperClaim(
        "pre-alloc block-level beats no-dp, default block-level does not",
        ">1 vs <1 relative to no-dp",
        f"{cell('block-level', 'pre-alloc') / cell('block-level', 'no-dp'):.2f} vs "
        f"{cell('block-level', 'default') / cell('block-level', 'no-dp'):.2f}",
        cell("block-level", "pre-alloc") > cell("block-level", "no-dp")
        > cell("block-level", "default"),
    ))
    return out


def main(runner: ExperimentRunner | None = None) -> str:
    runner = runner or ExperimentRunner()
    table = compute(runner)
    lines = [table.render(), ""]
    lines += [c.render() for c in claims(table, runner)]
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(main())

"""Plain-text tables and bar charts for the experiment harnesses.

The paper presents Figs. 5-10 as bar charts; a terminal reproduction
renders the same series as aligned tables plus optional ASCII bars, and
records paper-reported reference values next to measured ones so
EXPERIMENTS.md can be regenerated mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


@dataclass
class Table:
    """A figure/table worth of results."""

    title: str
    columns: list[str]
    rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, *cells) -> None:
        self.rows.append(list(cells))

    def render(self, float_fmt: str = "{:.2f}") -> str:
        def fmt(cell) -> str:
            if isinstance(cell, float):
                return float_fmt.format(cell)
            return str(cell)

        grid = [self.columns] + [[fmt(c) for c in row] for row in self.rows]
        widths = [max(len(row[i]) for row in grid) for i in range(len(self.columns))]
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(c.ljust(w) for c, w in zip(grid[0], widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in grid[1:]:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def column(self, name: str) -> list:
        i = self.columns.index(name)
        return [row[i] for row in self.rows]


def bar_chart(labels: Sequence[str], values: Sequence[float], width: int = 46,
              unit: str = "x", log: bool = False) -> str:
    """Horizontal ASCII bars (log scale optional, as the paper's speedup
    charts are log-scale)."""
    import math

    if not values:
        return "(no data)"
    vmax = max(values)
    lines = []
    lab_w = max(len(lab) for lab in labels)
    for label, value in zip(labels, values):
        if log:
            frac = (math.log10(max(value, 1e-9)) - min(0.0, 0.0)) / max(
                math.log10(max(vmax, 1.0000001)), 1e-9)
            frac = max(0.0, min(1.0, frac))
        else:
            frac = value / vmax if vmax else 0.0
        bar = "#" * max(1, int(frac * width)) if value > 0 else ""
        lines.append(f"{label.ljust(lab_w)} | {bar} {value:.2f}{unit}")
    return "\n".join(lines)


def geomean(values: Sequence[float]) -> float:
    import math

    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def run_provenance(stats) -> str:
    """One status line saying where a harness's runs came from.

    ``stats`` is a :class:`~repro.experiments.runner.RunStats`; the CLI
    prints this once after rendering so warm-start invocations are
    visible (``0 executed`` means the cache supplied everything).
    """
    return f"[runs: {stats.describe()}]"


@dataclass
class PaperClaim:
    """A paper-reported quantity and how our measurement compares."""

    claim: str
    paper_value: str
    measured: str
    holds: bool

    def render(self) -> str:
        mark = "OK " if self.holds else "DIFF"
        return f"[{mark}] {self.claim}: paper={self.paper_value}  measured={self.measured}"

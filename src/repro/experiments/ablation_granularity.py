"""Ablation — consolidation granularity (the strategy axis), per app.

The paper reports warp-, block- and grid-level consolidation side by side
(Fig. 7) but never isolates *why* a granularity wins on a given app.
This harness compares every registered
:class:`~repro.compiler.strategies.base.ConsolidationStrategy` on every
benchmark and puts the mechanism next to the speedup: consolidated
launch counts (the launch-overhead axis), buffers acquired (the
allocator-pressure axis) and __syncthreads stall cycles (the
load-balance axis the block-wide barriers pay).

Runs are requested through the generic ``consolidated`` variant with an
explicit ``strategy``, exactly like ``repro run <app> consolidated
--strategy <name>``; the runner canonicalizes built-in strategies onto
the legacy per-granularity variants, so this ablation shares every cache
entry with Figs. 7-10. Run via ``repro granularity`` (it is also part of
``repro all``).
"""

from __future__ import annotations

from typing import Optional

from ..apps import all_apps
from ..apps.common import BASIC, CONS
from ..compiler.strategies import available_strategies, get_strategy
from .plan import RunSpec, WorkPlan
from .reporting import PaperClaim, Table, geomean
from .runner import ExperimentRunner


def plan(runner: ExperimentRunner) -> WorkPlan:
    """Every run :func:`compute` will request, for batch prefetching."""
    specs = [RunSpec(app.key, BASIC) for app in all_apps()]
    specs += [RunSpec(app.key, CONS, strategy=name)
              for app in all_apps()
              for name in available_strategies()]
    return WorkPlan(specs)


def compute(runner: ExperimentRunner) -> Table:
    names = available_strategies()
    table = Table(
        title="Ablation — consolidation strategy (granularity) per app",
        columns=(["app"] + [f"{n} (x)" for n in names]
                 + ["best", "launches " + "/".join(names),
                    "buffers " + "/".join(names),
                    "stall kcyc " + "/".join(names)]),
    )
    for app in all_apps():
        base = runner.run(app.key, BASIC)
        speedups, launches, buffers, stalls = [], [], [], []
        for name in names:
            m = runner.run(app.key, CONS, strategy=name).metrics
            speedups.append(base.metrics.cycles / m.cycles)
            launches.append(m.device_launches)
            buffers.append(m.buffers_acquired)
            stalls.append(m.barrier_stall_cycles)
        best = names[max(range(len(names)), key=lambda i: speedups[i])]
        table.add(app.label, *speedups, best,
                  "/".join(str(v) for v in launches),
                  "/".join(str(v) for v in buffers),
                  "/".join(f"{v / 1000:.0f}" for v in stalls))
    table.add("geomean",
              *[geomean(table.column(f"{n} (x)")) for n in names],
              "", "", "", "")
    table.notes.append(
        "speedup over basic-dp; launches = consolidated child kernels "
        "actually dispatched, buffers = consolidation buffers allocated, "
        "stall = warp-kilocycles waiting at __syncthreads (load imbalance)"
    )
    table.notes.append(
        "per strategy: " + "; ".join(
            f"{n}: {get_strategy(n).tradeoff}" for n in names)
    )
    return table


def claims(table: Table) -> list[PaperClaim]:
    """Scale-robust structural checks on the granularity trade-off."""
    names = available_strategies()
    apps = table.rows[:-1]
    launch_col = table.columns.index("launches " + "/".join(names))
    buffer_col = table.columns.index("buffers " + "/".join(names))
    wi, gi = names.index("warp"), names.index("grid")

    def parse(cell: str) -> list[int]:
        return [int(v) for v in cell.split("/")]

    # grid scope subsumes warp scope, so per parent round it can never
    # dispatch more drain kernels than warp-level (block-level can beat
    # grid on host-loop apps at tiny scales: one grid drain per
    # iteration vs. few populated blocks overall)
    fewer_than_warp = sum(
        1 for row in apps
        if parse(row[launch_col])[gi] <= parse(row[launch_col])[wi])
    most_buffers = sum(
        1 for row in apps
        if parse(row[buffer_col])[wi] == max(parse(row[buffer_col])))
    return [
        PaperClaim(
            "grid-level never dispatches more consolidated kernels than "
            "warp-level",
            "all apps", f"holds on {fewer_than_warp}/{len(apps)}",
            fewer_than_warp == len(apps),
        ),
        PaperClaim(
            "warp-level allocates the most consolidation buffers",
            "all apps", f"holds on {most_buffers}/{len(apps)}",
            most_buffers == len(apps),
        ),
    ]


def main(runner: Optional[ExperimentRunner] = None) -> str:
    runner = runner or ExperimentRunner()
    table = compute(runner)
    lines = [table.render(), ""]
    lines += [c.render() for c in claims(table)]
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(main())

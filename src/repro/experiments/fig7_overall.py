"""Figure 7 — overall speedup over basic dynamic parallelism.

For each of the seven benchmarks: speedup of no-dp (flat), warp-, block-
and grid-level consolidation over the basic-dp baseline. Published
averages: 999x (warp), 1357x (block), 1459x (grid) over basic-dp, and
2.18x / 3.26x / 3.78x over no-dp; grid > block > warp everywhere, and
basic-dp is 80-1100x *slower* than flat.

Absolute factors scale with dataset size (the paper's graphs have 5-16M
edges; the simulator runs scaled-down inputs — see DESIGN.md §2), so the
claims checked here are the *orderings* and the flat-relative gains.
"""

from __future__ import annotations

from ..apps import all_apps
from .plan import RunSpec, WorkPlan
from .reporting import PaperClaim, Table, bar_chart, geomean
from .runner import ExperimentRunner

VARIANTS = ("no-dp", "warp-level", "block-level", "grid-level")

#: paper-reported averages for EXPERIMENTS.md (speedup over basic-dp)
PAPER_AVG = {"warp-level": 999.0, "block-level": 1357.0, "grid-level": 1459.0}
PAPER_AVG_VS_FLAT = {"warp-level": 2.18, "block-level": 3.26, "grid-level": 3.78}


def plan(runner: ExperimentRunner) -> WorkPlan:
    """Every run :func:`compute` will request, for batch prefetching."""
    return WorkPlan(RunSpec(app.key, variant)
                    for app in all_apps()
                    for variant in ("basic-dp",) + VARIANTS)


def compute(runner: ExperimentRunner) -> Table:
    table = Table(
        title="Fig. 7 — overall speedup over basic-dp",
        columns=["app"] + list(VARIANTS),
    )
    for app in all_apps():
        base = runner.run(app.key, "basic-dp")
        row = [app.label]
        for variant in VARIANTS:
            run = runner.run(app.key, variant)
            row.append(base.metrics.cycles / run.metrics.cycles)
        table.add(*row)
    averages = ["geomean"]
    for i, variant in enumerate(VARIANTS, start=1):
        averages.append(geomean([row[i] for row in table.rows]))
    table.add(*averages)
    table.notes.append(
        "paper averages: warp 999x, block 1357x, grid 1459x over basic-dp "
        "(2.18x/3.26x/3.78x over no-dp); scaled datasets compress the "
        "absolute factors"
    )
    return table


def claims(table: Table) -> list[PaperClaim]:
    col = table.columns.index
    apps = table.rows[:-1]
    avg = table.rows[-1]
    out = []
    ordering = sum(
        1 for row in apps
        if row[col("grid-level")] >= row[col("block-level")]
        >= row[col("warp-level")]
    )
    out.append(PaperClaim(
        "grid >= block >= warp per app",
        "holds on all 7", f"holds on {ordering}/7", ordering >= 6,
    ))
    all_beat_basic = all(
        row[c] > 1.0 for row in apps for c in range(1, len(table.columns))
    )
    out.append(PaperClaim(
        "every consolidation (and flat) beats basic-dp",
        "80-3300x", "holds" if all_beat_basic else "violated", all_beat_basic,
    ))
    grid_vs_flat = avg[col("grid-level")] / avg[col("no-dp")]
    block_vs_flat = avg[col("block-level")] / avg[col("no-dp")]
    warp_vs_flat = avg[col("warp-level")] / avg[col("no-dp")]
    out.append(PaperClaim(
        "average consolidated speedup over no-dp (warp/block/grid)",
        "2.18x / 3.26x / 3.78x",
        f"{warp_vs_flat:.2f}x / {block_vs_flat:.2f}x / {grid_vs_flat:.2f}x",
        grid_vs_flat > 1.0 and grid_vs_flat >= block_vs_flat >= warp_vs_flat * 0.9,
    ))
    return out


def main(runner: ExperimentRunner | None = None) -> str:
    runner = runner or ExperimentRunner()
    table = compute(runner)
    lines = [table.render(), ""]
    gl = table.columns.index("grid-level")
    lines.append(bar_chart([row[0] for row in table.rows],
                           [row[gl] for row in table.rows], log=True))
    lines.append("")
    lines += [c.render() for c in claims(table)]
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(main())

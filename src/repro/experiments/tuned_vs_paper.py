"""Tuned configurations vs the paper's fixed choices, per app.

The paper hand-picks every consolidation knob: the ``consldt`` clause
fixes the aggregation granularity, per-app delegation thresholds are set
without study, and §IV.E's KC rule fixes the child kernel configuration.
This harness lets the :class:`~repro.tuning.Tuner` search the joint
space for every benchmark and puts the result next to the paper default:
objective value for both, the improvement factor, and which knobs the
winning candidate actually moved.

Because the paper-default candidate is always evaluated, the gain column
is >= 1.0 by construction — the interesting content is *how much* is on
the table per app and *which* knob buys it. Run via
``repro tuned-vs-paper`` (optionally ``--apps sssp spmv``) or
``benchmarks/bench_tuned.py``; tuned configs persist in the registry as
a side effect, so a follow-up ``repro run <app> tuned`` consumes them.
"""

from __future__ import annotations

from typing import Optional

from ..apps import all_apps, get_app
from .reporting import Table, geomean


def compute(tuner, apps=None, objective: str = "cycles",
            algorithm: str = "halving", budget: Optional[int] = None,
            seed: int = 0) -> Table:
    """Tune each app and tabulate the comparison.

    ``tuner`` is a :class:`repro.tuning.Tuner`; attach a registry to it
    to persist every winner. ``apps`` restricts the benchmark set.
    """
    from ..tuning import get_objective

    obj = get_objective(objective)
    keys = list(apps) if apps else [a.key for a in all_apps()]
    table = Table(
        title=f"Tuned configuration vs paper defaults ({obj.name}, "
              f"{algorithm} search)",
        columns=["app", "paper", "tuned", "gain (x)", "tuned candidate",
                 "evals"],
    )
    gains = []
    for key in keys:
        res = tuner.tune(key, objective=obj, algorithm=algorithm,
                         budget=budget, seed=seed)
        gains.append(res.gain())
        table.add(get_app(key).label, obj.format(res.baseline.value),
                  obj.format(res.best.value), res.gain(),
                  res.best.candidate.describe(), res.evaluations)
    table.add("geomean", "", "", geomean(gains), "", "")
    table.notes.append(
        "gain = improvement over the paper's fixed configuration in the "
        "objective's better-direction; >= 1.0 by construction (the "
        "default is always a candidate)"
    )
    table.notes.append(
        "candidate fields left at their default mean the paper's choice "
        "was already best on that axis"
    )
    return table


def main(tuner=None, apps=None, objective: str = "cycles",
         algorithm: str = "halving", budget: Optional[int] = None,
         seed: int = 0) -> str:
    if tuner is None:
        from ..tuning import Tuner

        tuner = Tuner()
    return compute(tuner, apps=apps, objective=objective,
                   algorithm=algorithm, budget=budget, seed=seed).render()


if __name__ == "__main__":  # pragma: no cover
    print(main())

"""Input-sensitivity sweep: variant x workload, per app.

The paper evaluates each benchmark on exactly one dataset and fixes the
consolidation granularity per app; Olabi et al. (arXiv:2201.02789) later
showed the profitable aggregation configuration *flips with the input*.
This harness measures that sensitivity directly: every app runs every
registered consolidation strategy on a spread of registered workloads
(the paper's default plus the adversarial families of
:mod:`repro.workloads.generators`), and the table marks where the
paper's fixed choice — the ``consldt`` clause in each app's pragma —
stops being the winner.

Runs go through the shared runner/cache like every figure (the
default-workload column shares its entries with Figs. 7-10); run via
``repro sensitivity`` (``--apps`` restricts the sweep).
"""

from __future__ import annotations

import re
from typing import Iterable, Optional

from ..apps import all_apps, get_app
from ..apps.common import App, BASIC, CONS
from ..compiler.strategies import available_strategies
from .plan import RunSpec, WorkPlan
from .reporting import PaperClaim, Table
from .runner import ExperimentRunner

#: non-default graph workloads swept per graph app (None = app default);
#: asymmetric families are skipped for apps that require symmetry
GRAPH_WORKLOADS = (None, "road", "star", "chain", "bimodal")

#: non-default tree workloads swept per tree app
TREE_WORKLOADS = (None, "tree-skewed", "tree-balanced", "tree-deep")


def paper_granularity(app: App) -> str:
    """The granularity the paper fixes for an app: its pragma's
    ``consldt`` clause."""
    match = re.search(r"consldt\((\w+)\)", app.annotated_source())
    if match is None:  # pragma: no cover - every shipped app has one
        raise ValueError(f"{app.key}: no consldt clause in pragma")
    return match.group(1)


def workloads_for(app: App) -> list[Optional[str]]:
    """The workload column set for one app (None first = its default),
    filtered by the app's kind/symmetry/depth requirements."""
    # imported lazily: repro.workloads pulls in the experiments store
    # for its dataset cache, so a module-level import here would close
    # an import cycle when repro.workloads is imported first
    from ..workloads import get_workload, incompatibility

    pool = GRAPH_WORKLOADS if app.kind == "graph" else TREE_WORKLOADS
    out: list[Optional[str]] = []
    for name in pool:
        if name is not None and \
                incompatibility(app, get_workload(name)) is not None:
            continue
        out.append(name)
    return out


def _apps(apps: Optional[Iterable[str]]) -> list[App]:
    if apps is None:
        return all_apps()
    return [get_app(key) for key in apps]


def plan(runner: ExperimentRunner,
         apps: Optional[Iterable[str]] = None) -> WorkPlan:
    """Every run :func:`compute` will request, for batch prefetching."""
    specs = []
    for app in _apps(apps):
        for workload in workloads_for(app):
            specs.append(RunSpec(app.key, BASIC, workload=workload))
            specs += [RunSpec(app.key, CONS, strategy=name,
                              workload=workload)
                      for name in available_strategies()]
    return WorkPlan(specs)


def compute(runner: ExperimentRunner,
            apps: Optional[Iterable[str]] = None) -> Table:
    names = available_strategies()
    table = Table(
        title="Input sensitivity — consolidation strategy x workload, "
              "per app",
        columns=(["app", "workload"] + [f"{n} (x)" for n in names]
                 + ["best", "paper", "paper wins"]),
    )
    for app in _apps(apps):
        fixed = paper_granularity(app)
        for workload in workloads_for(app):
            base = runner.run(app.key, BASIC, workload=workload)
            speedups = []
            for name in names:
                m = runner.run(app.key, CONS, strategy=name,
                               workload=workload).metrics
                speedups.append(base.metrics.cycles / m.cycles)
            best = names[max(range(len(names)),
                             key=lambda i: speedups[i])]
            label = workload if workload is not None else \
                f"{app.default_workload} (default)"
            table.add(app.label, label, *speedups, best, fixed,
                      "yes" if best == fixed else "NO")
    table.notes.append(
        "speedup over basic-dp on the same workload; paper = the "
        "granularity fixed by the app's consldt pragma clause; "
        "'NO' rows are inputs where that fixed choice loses")
    table.notes.append(
        "symmetry-requiring apps (GC, BFS-Rec) skip asymmetric "
        "workloads; tree apps sweep the tree families")
    return table


def claims(table: Table) -> list[PaperClaim]:
    """The headline: the profitable configuration flips with the input."""
    best_col = table.columns.index("best")
    wins_col = table.columns.index("paper wins")
    beaten = [row for row in table.rows if row[wins_col] == "NO"]
    by_app: dict[str, set] = {}
    for row in table.rows:
        by_app.setdefault(row[0], set()).add(row[best_col])
    flips = sum(1 for winners in by_app.values() if len(winners) > 1)
    return [
        PaperClaim(
            "the paper-default granularity is not the winner on at "
            "least one workload",
            "fixed per-app choice", f"beaten on {len(beaten)} "
            f"app x workload cells", len(beaten) >= 1,
        ),
        PaperClaim(
            "the winning strategy flips with the input for at least "
            "one app (Olabi et al., arXiv:2201.02789)",
            "input-dependent", f"{flips}/{len(by_app)} apps flip",
            flips >= 1,
        ),
    ]


def main(runner: Optional[ExperimentRunner] = None,
         apps: Optional[Iterable[str]] = None) -> str:
    runner = runner or ExperimentRunner()
    table = compute(runner, apps=apps)
    lines = [table.render(), ""]
    lines += [c.render() for c in claims(table)]
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(main())

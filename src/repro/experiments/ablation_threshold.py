"""Ablation — the work-delegation threshold.

Every irregular-loop benchmark guards its child launch with
``deg > threshold`` (Fig. 1(b)). The paper fixes thresholds per app without
studying them; this harness sweeps the threshold for one app and shows the
tradeoff the template embodies:

* threshold too low  -> everything is delegated: the buffer carries tiny
  items whose per-item overhead wipes out the balance gain;
* threshold too high -> nothing is delegated: the kernel degenerates to
  the flat version, divergence and all;
* the sweet spot sits around the warp width, where delegated items are
  big enough to occupy the threads that process them.

The sweep goes through the shared :class:`ExperimentRunner` (each
threshold is part of the run's cache key), so it batches and caches like
every figure harness. Run via ``benchmarks/bench_ablation_threshold.py``
or::

    from repro.experiments.ablation_threshold import main
    print(main())
"""

from __future__ import annotations

from typing import Optional

from ..apps import get_app
from .plan import RunSpec, WorkPlan
from .runner import ExperimentRunner
from .reporting import Table

THRESHOLDS = (2, 8, 32, 128, 100_000)
APP = "sssp"
DEFAULT_SWEEP_SCALE = 0.5


def plan(runner: ExperimentRunner, variant: str = "grid-level") -> WorkPlan:
    """Every run :func:`compute` will request, for batch prefetching."""
    return WorkPlan(RunSpec(APP, variant, threshold=t) for t in THRESHOLDS)


def _sweep_runner(runner: Optional[ExperimentRunner],
                  scale: float) -> ExperimentRunner:
    """``scale`` only parameterizes the fallback runner; passing both a
    runner and a non-default scale is a caller mistake."""
    if runner is not None:
        if scale != DEFAULT_SWEEP_SCALE:
            raise ValueError(
                "pass either a runner (its scale wins) or a scale, not both")
        return runner
    return ExperimentRunner(scale=scale)


def compute(runner: Optional[ExperimentRunner] = None,
            scale: float = DEFAULT_SWEEP_SCALE,
            variant: str = "grid-level") -> Table:
    runner = _sweep_runner(runner, scale)
    table = Table(
        title=f"Ablation — delegation threshold ({get_app(APP).label}, {variant})",
        columns=["threshold", "cycles", "child launches", "buffered items",
                 "warp efficiency"],
    )
    for threshold in THRESHOLDS:
        m = runner.run(APP, variant, threshold=threshold).metrics
        label = str(threshold) if threshold < 100_000 else "inf (flat-like)"
        table.add(label, f"{m.cycles:,.0f}", m.device_launches,
                  m.buffer_pushes, f"{m.warp_execution_efficiency:.1%}")
    table.notes.append(
        "delegating everything and delegating nothing both lose; the knee "
        "sits near the warp width (the paper's per-app choices)"
    )
    return table


#: ``best_threshold`` lived here through PR 3 as a deprecated shim onto
#: :func:`repro.tuning.best_threshold`; removed per the deprecation
#: policy (repro.errors.DeprecationPolicy, DESIGN.md §15) — the tuner
#: spelling issues the identical RunSpecs, so cache entries carry over.


def main(scale: float = DEFAULT_SWEEP_SCALE) -> str:
    return compute(scale=scale).render()


if __name__ == "__main__":  # pragma: no cover
    print(main())

"""Ablation — the work-delegation threshold.

Every irregular-loop benchmark guards its child launch with
``deg > threshold`` (Fig. 1(b)). The paper fixes thresholds per app without
studying them; this harness sweeps the threshold for one app and shows the
tradeoff the template embodies:

* threshold too low  -> everything is delegated: the buffer carries tiny
  items whose per-item overhead wipes out the balance gain;
* threshold too high -> nothing is delegated: the kernel degenerates to
  the flat version, divergence and all;
* the sweet spot sits around the warp width, where delegated items are
  big enough to occupy the threads that process them.

Run via ``benchmarks/bench_ablation_threshold.py`` or::

    from repro.experiments.ablation_threshold import main
    print(main())
"""

from __future__ import annotations

from ..apps import get_app
from ..sim.specs import DEFAULT_COST_MODEL, K20C
from .reporting import Table

THRESHOLDS = (2, 8, 32, 128, 100_000)
APP = "sssp"


def compute(scale: float = 0.5, variant: str = "grid-level") -> Table:
    app = get_app(APP)
    dataset = app.default_dataset(scale)
    table = Table(
        title=f"Ablation — delegation threshold ({app.label}, {variant})",
        columns=["threshold", "cycles", "child launches", "buffered items",
                 "warp efficiency"],
    )
    original = app.threshold
    try:
        for threshold in THRESHOLDS:
            app.threshold = threshold
            run = app.run(variant, dataset=dataset, spec=K20C,
                          cost=DEFAULT_COST_MODEL)
            m = run.metrics
            label = str(threshold) if threshold < 100_000 else "inf (flat-like)"
            table.add(label, f"{m.cycles:,.0f}", m.device_launches,
                      m.buffer_pushes, f"{m.warp_execution_efficiency:.1%}")
    finally:
        app.threshold = original
    table.notes.append(
        "delegating everything and delegating nothing both lose; the knee "
        "sits near the warp width (the paper's per-app choices)"
    )
    return table


def best_threshold(scale: float = 0.5, variant: str = "grid-level") -> int:
    """Threshold with the lowest simulated cycles (helper for tests)."""
    app = get_app(APP)
    dataset = app.default_dataset(scale)
    original = app.threshold
    best, best_cycles = None, float("inf")
    try:
        for threshold in THRESHOLDS:
            app.threshold = threshold
            cycles = app.run(variant, dataset=dataset).metrics.cycles
            if cycles < best_cycles:
                best, best_cycles = threshold, cycles
    finally:
        app.threshold = original
    return best


def main(scale: float = 0.5) -> str:
    return compute(scale).render()


if __name__ == "__main__":  # pragma: no cover
    print(main())

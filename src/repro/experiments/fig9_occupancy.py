"""Figure 9 — achieved SMX occupancy.

Published: workload consolidation lifts achieved occupancy from 27.9%
(basic-dp) to 39.3% / 60.3% / 82.9% for warp-/block-/grid-level: basic-dp
fills the device with "small" kernels and the 32-concurrent-kernel cap
leaves SMX warp slots idle, while consolidation grows the average child
kernel until the occupancy-calculator configuration can fill the machine.

Absolute values at simulator scale are lower than the paper's (scaled
datasets run fewer resident warps against the same 13-SMX device), so the
checked claims are the orderings and relative gains.
"""

from __future__ import annotations

from ..apps import all_apps
from .plan import RunSpec, WorkPlan
from .reporting import PaperClaim, Table
from .runner import ExperimentRunner

VARIANTS = ("basic-dp", "warp-level", "block-level", "grid-level")

PAPER_AVG_OCC = {"basic-dp": 0.279, "warp-level": 0.393, "block-level": 0.603,
                 "grid-level": 0.829}


def plan(runner: ExperimentRunner) -> WorkPlan:
    """Every run :func:`compute` will request, for batch prefetching."""
    return WorkPlan(RunSpec(app.key, variant)
                    for app in all_apps() for variant in VARIANTS)


def compute(runner: ExperimentRunner) -> Table:
    table = Table(
        title="Fig. 9 — achieved SMX occupancy",
        columns=["app"] + list(VARIANTS),
    )
    for app in all_apps():
        row = [app.label]
        for variant in VARIANTS:
            m = runner.run(app.key, variant).metrics
            row.append(f"{m.achieved_occupancy:.1%}")
        table.add(*row)
    avg = ["average"]
    for variant in VARIANTS:
        vals = [runner.run(a.key, variant).metrics.achieved_occupancy
                for a in all_apps()]
        avg.append(f"{sum(vals) / len(vals):.1%}")
    table.add(*avg)
    table.notes.append("paper averages: 27.9% -> 39.3% / 60.3% / 82.9%")
    return table


def claims(runner: ExperimentRunner) -> list[PaperClaim]:
    apps = all_apps()
    avg = {}
    for variant in VARIANTS:
        vals = [runner.run(a.key, variant).metrics.achieved_occupancy
                for a in apps]
        avg[variant] = sum(vals) / len(vals)
    ordering = (avg["basic-dp"] < avg["warp-level"] < avg["block-level"]
                < avg["grid-level"])
    return [PaperClaim(
        "avg occupancy: basic < warp < block < grid",
        "27.9% < 39.3% < 60.3% < 82.9%",
        " < ".join(f"{avg[v]:.1%}" for v in VARIANTS),
        ordering,
    )]


def main(runner: ExperimentRunner | None = None) -> str:
    runner = runner or ExperimentRunner()
    table = compute(runner)
    lines = [table.render(), ""]
    lines += [c.render() for c in claims(runner)]
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(main())

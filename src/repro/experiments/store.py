"""Content-addressed on-disk store for experiment results.

Every :class:`~repro.apps.common.AppRun` is addressed by a stable hash of
*everything that determines it*: the app key, variant, allocator, launch
configuration, the dataset's content fingerprint, every cost-model field,
the device spec, the delegation threshold, the verify flag, and the
package version. Two runs with value-equal inputs therefore share one
cache entry — across processes and across invocations — while any change
to a cost constant, a dataset generator, or the package itself changes
the address and forces re-execution.

This replaces the seed runner's in-process ``id(cost_obj)`` key, which
was doubly wrong: it missed sharing between value-equal cost models, and
``id()`` values are reused after garbage collection, so a *different*
cost model could silently hit a stale entry.

Entries are pickled ``AppRun`` objects written atomically
(temp file + ``os.replace``), so concurrent writers — e.g. two
``repro all --jobs N`` invocations against one cache directory — never
expose torn files. Unreadable entries are treated as misses and removed.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Optional

import numpy as np

#: bump to invalidate every existing cache entry on a format change
#: (2: strategy axis added to the key payload, RunMetrics gained fields)
STORE_FORMAT = 2

#: environment variable overriding the default cache directory
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``~/.cache/repro-wulb16``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-wulb16"


def _hash_value(h, value) -> None:
    if isinstance(value, np.ndarray):
        arr = np.ascontiguousarray(value)
        h.update(str(arr.dtype).encode())
        h.update(str(arr.shape).encode())
        h.update(arr.tobytes())
    else:
        h.update(repr(value).encode())


def dataset_fingerprint(dataset) -> str:
    """Content hash of a dataset (CSR graph, tree, or any dataclass of
    NumPy arrays and scalars)."""
    h = hashlib.sha256()
    h.update(type(dataset).__name__.encode())
    if dataclasses.is_dataclass(dataset):
        for f in dataclasses.fields(dataset):
            h.update(f.name.encode())
            _hash_value(h, getattr(dataset, f.name))
    else:
        _hash_value(h, dataset)
    return h.hexdigest()


def run_key(*, app: str, variant: str, allocator: str,
            config: Optional[tuple], dataset_fp: str,
            cost, spec, threshold: int, verify: bool,
            version: str, strategy: Optional[str] = None,
            workload: Optional[str] = None) -> str:
    """Stable content address for one application run.

    ``strategy`` is the consolidation-strategy axis; it is ``None`` for
    the built-in granularities (their canonical spelling is the variant
    itself) and a registry name for plugin strategies running under the
    ``'consolidated'`` variant.

    ``workload`` is the canonical workload reference, already folded
    onto ``None`` for each app's default by the runner. It enters the
    payload **only when set**: the dataset's content is fully captured
    by ``dataset_fp`` (the name is provenance, guarding against two
    workloads that happen to collide on content), and omitting the
    ``None`` case keeps every pre-PR-4 key byte-identical — which is why
    the workload axis did *not* bump ``STORE_FORMAT`` (DESIGN.md §12).
    """
    payload = {
        "format": STORE_FORMAT,
        "version": version,
        "app": app,
        "variant": variant,
        "strategy": strategy,
        "allocator": allocator,
        "config": list(config) if config is not None else None,
        "dataset": dataset_fp,
        "cost": dataclasses.asdict(cost),
        "spec": dataclasses.asdict(spec),
        "threshold": threshold,
        "verify": verify,
    }
    if workload is not None:
        payload["workload"] = workload
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()


class ResultStore:
    """Filesystem-backed map from content address to pickled AppRun.

    The store directory is created lazily, on the first :meth:`put` —
    read-only operations (``repro cache info`` on a directory that does
    not exist yet, lookups against an empty cache) simply report an
    empty store instead of touching the filesystem or raising.
    """

    def __init__(self, root: Path | str):
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str):
        """The stored AppRun, or None; corrupt entries count as misses."""
        path = self.path_for(key)
        try:
            with path.open("rb") as fh:
                return pickle.load(fh)
        except FileNotFoundError:
            return None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, ValueError):
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def put(self, key: str, run) -> None:
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(run, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def _entries(self) -> list[Path]:
        return list(self.root.glob("*/*.pkl"))

    def __len__(self) -> int:
        return len(self._entries())

    def size_bytes(self) -> int:
        return sum(p.stat().st_size for p in self._entries())

    def clear(self) -> int:
        """Remove every entry; returns how many were removed."""
        entries = self._entries()
        for path in entries:
            try:
                path.unlink()
            except OSError:
                pass
        return len(entries)

    def __repr__(self) -> str:
        return f"ResultStore({str(self.root)!r})"

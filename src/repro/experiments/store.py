"""Content-addressed on-disk store for experiment results.

Every :class:`~repro.apps.common.AppRun` is addressed by a stable hash of
*everything that determines it*: the app key, variant, allocator, launch
configuration, the dataset's content fingerprint, every cost-model field,
the device spec, the delegation threshold, the verify flag, and the
package version. Two runs with value-equal inputs therefore share one
cache entry — across processes and across invocations — while any change
to a cost constant, a dataset generator, or the package itself changes
the address and forces re-execution.

This replaces the seed runner's in-process ``id(cost_obj)`` key, which
was doubly wrong: it missed sharing between value-equal cost models, and
``id()`` values are reused after garbage collection, so a *different*
cost model could silently hit a stale entry.

Entries are pickled ``AppRun`` objects written atomically
(temp file + ``os.replace``), so concurrent writers — e.g. two
``repro all --jobs N`` invocations against one cache directory — never
expose torn files. Unreadable entries are treated as misses and removed.

Writes land in **shard directories** (``shard-NN/``, NN derived from the
content address), so the N concurrent writers of an experiment service
(:mod:`repro.service`) spread directory-entry churn across ``shards``
independent directories instead of contending on one. Reads remain
transparently compatible with the pre-shard flat layout
(``<key[:2]>/<key>.pkl``): a lookup tries the computed shard first, then
the legacy path, then every shard directory (covering stores written
with a different shard count) — and the first ``put`` of a key migrates
its legacy entry into the shard layout, so mixed-layout stores converge
without a rewrite pass. See DESIGN.md §13.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Optional

import numpy as np

#: bump to invalidate every existing cache entry on a format change
#: (2: strategy axis added to the key payload, RunMetrics gained fields)
STORE_FORMAT = 2

#: environment variable overriding the default cache directory
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: default number of shard directories new entries are spread across
DEFAULT_SHARDS = 16

#: environment variable overriding the shard count
SHARDS_ENV = "REPRO_STORE_SHARDS"


def default_shards() -> int:
    """``$REPRO_STORE_SHARDS``, else :data:`DEFAULT_SHARDS`."""
    env = os.environ.get(SHARDS_ENV)
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return DEFAULT_SHARDS


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``~/.cache/repro-wulb16``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-wulb16"


def _hash_value(h, value) -> None:
    if isinstance(value, np.ndarray):
        arr = np.ascontiguousarray(value)
        h.update(str(arr.dtype).encode())
        h.update(str(arr.shape).encode())
        h.update(arr.tobytes())
    else:
        h.update(repr(value).encode())


def dataset_fingerprint(dataset) -> str:
    """Content hash of a dataset (CSR graph, tree, or any dataclass of
    NumPy arrays and scalars)."""
    h = hashlib.sha256()
    h.update(type(dataset).__name__.encode())
    if dataclasses.is_dataclass(dataset):
        for f in dataclasses.fields(dataset):
            h.update(f.name.encode())
            _hash_value(h, getattr(dataset, f.name))
    else:
        _hash_value(h, dataset)
    return h.hexdigest()


def run_key(*, app: str, variant: str, allocator: str,
            config: Optional[tuple], dataset_fp: str,
            cost, spec, threshold: int, verify: bool,
            version: str, strategy: Optional[str] = None,
            workload: Optional[str] = None,
            backend: Optional[str] = None,
            oracle: Optional[str] = None) -> str:
    """Stable content address for one application run.

    ``strategy`` is the consolidation-strategy axis; it is ``None`` for
    the built-in granularities (their canonical spelling is the variant
    itself) and a registry name for plugin strategies running under the
    ``'consolidated'`` variant.

    ``workload`` is the canonical workload reference, already folded
    onto ``None`` for each app's default by the runner. It enters the
    payload **only when set**: the dataset's content is fully captured
    by ``dataset_fp`` (the name is provenance, guarding against two
    workloads that happen to collide on content), and omitting the
    ``None`` case keeps every pre-PR-4 key byte-identical — which is why
    the workload axis did *not* bump ``STORE_FORMAT`` (DESIGN.md §12).

    ``backend`` follows the same only-when-set rule: the runner folds
    the default ``'sim'`` onto ``None`` before keying, so every
    pre-backend key is byte-identical and only genuinely different
    execution targets (e.g. ``'cpu'``) get distinct addresses
    (DESIGN.md §14).

    ``oracle`` does too: the default (vectorized) engine keys as None,
    and only an explicitly non-default exact oracle (``'sim-scalar'``)
    enters the payload. The engines produce bitwise-identical metrics,
    so distinct addresses are pure provenance — they record *which
    implementation* produced an entry — at the cost of one redundant
    simulation per differential pairing (DESIGN.md §15).
    """
    payload = {
        "format": STORE_FORMAT,
        "version": version,
        "app": app,
        "variant": variant,
        "strategy": strategy,
        "allocator": allocator,
        "config": list(config) if config is not None else None,
        "dataset": dataset_fp,
        "cost": dataclasses.asdict(cost),
        "spec": dataclasses.asdict(spec),
        "threshold": threshold,
        "verify": verify,
    }
    if workload is not None:
        payload["workload"] = workload
    if backend is not None:
        payload["backend"] = backend
    if oracle is not None:
        payload["oracle"] = oracle
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()


class ResultStore:
    """Filesystem-backed map from content address to pickled AppRun.

    The store directory is created lazily, on the first :meth:`put` —
    read-only operations (``repro cache info`` on a directory that does
    not exist yet, lookups against an empty cache) simply report an
    empty store instead of touching the filesystem or raising.

    New entries are spread across ``shards`` shard directories
    (``shard-NN/``); lookups additionally fall back to the pre-shard
    flat layout (``<key[:2]>/``) and to shard directories written under
    a different shard count, so any mix of layouts reads as one store.
    """

    #: glob pattern matching flat-layout (pre-shard) subdirectories —
    #: two hex characters, the first bytes of the content address
    _LEGACY_GLOB = "[0-9a-f][0-9a-f]"

    def __init__(self, root: Path | str, shards: Optional[int] = None):
        self.root = Path(root)
        self.shards = shards if shards is not None else default_shards()

    # -- layout ----------------------------------------------------------------

    def shard_for(self, key: str) -> int:
        """Stable shard index of a content address (independent of the
        process, so every writer agrees on the placement)."""
        return int(key[:8], 16) % self.shards

    def path_for(self, key: str) -> Path:
        """Where :meth:`put` writes a key (its shard directory)."""
        return self.root / f"shard-{self.shard_for(key):02d}" / f"{key}.pkl"

    def _legacy_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def _locate(self, key: str) -> Optional[Path]:
        """The on-disk path currently holding a key, or None.

        Checks the computed shard, then the flat legacy layout, then —
        for stores written under a different shard count — every shard
        directory (one readdir, only on the miss path; misses are
        followed by a simulation, which dwarfs it).
        """
        path = self.path_for(key)
        if path.exists():
            return path
        legacy = self._legacy_path(key)
        if legacy.exists():
            return legacy
        for other in self.root.glob(f"shard-*/{key}.pkl"):
            return other
        return None

    def get(self, key: str):
        """The stored AppRun, or None; corrupt entries count as misses."""
        path = self._locate(key)
        if path is None:
            return None
        try:
            with path.open("rb") as fh:
                return pickle.load(fh)
        except FileNotFoundError:
            return None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, ValueError):
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def put(self, key: str, run) -> None:
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(run, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        # migrate-on-write: a rewritten key must not leave stale copies
        # behind in the flat layout or in a shard computed under a
        # different shard count — either would double-count the entry.
        # Only copies measurably *older* than this write are removed: a
        # concurrent writer configured with a different shard count
        # lands the same key milliseconds apart, and unlinking its
        # fresh copy symmetrically could drop the key from disk
        # entirely. Same-age duplicates are left for a later rewrite to
        # collect (they hold identical deterministic content).
        try:
            own_mtime = path.stat().st_mtime
        except OSError:
            return
        for stale in (self._legacy_path(key),
                      *self.root.glob(f"shard-*/{key}.pkl")):
            if stale == path:
                continue
            try:
                if stale.stat().st_mtime < own_mtime - 1.0:
                    stale.unlink()
            except OSError:
                pass

    def __contains__(self, key: str) -> bool:
        return self._locate(key) is not None

    def _entries(self) -> list[Path]:
        return (list(self.root.glob("shard-*/*.pkl"))
                + list(self.root.glob(f"{self._LEGACY_GLOB}/*.pkl")))

    def shard_info(self) -> dict:
        """Layout summary for ``repro cache info``: configured shard
        count, how many shard directories hold entries, and how many
        entries still sit in the flat legacy layout."""
        sharded = list(self.root.glob("shard-*/*.pkl"))
        legacy = list(self.root.glob(f"{self._LEGACY_GLOB}/*.pkl"))
        return {
            "shards": self.shards,
            "populated": len({p.parent.name for p in sharded}),
            "sharded_entries": len(sharded),
            "legacy_entries": len(legacy),
        }

    def __len__(self) -> int:
        return len(self._entries())

    def size_bytes(self) -> int:
        total = 0
        for p in self._entries():
            try:
                total += p.stat().st_size
            except OSError:
                # racing a writer whose migrate-on-write just unlinked
                # this copy; the entry lives on at its new path
                pass
        return total

    def clear(self) -> int:
        """Remove every entry; returns how many were removed."""
        entries = self._entries()
        for path in entries:
            try:
                path.unlink()
            except OSError:
                pass
        return len(entries)

    def __repr__(self) -> str:
        return f"ResultStore({str(self.root)!r})"

"""Memoized experiment runner.

The paper profiles the *same* executions for Figs. 7, 8, 9 and 10 (overall
speedup, warp efficiency, occupancy, DRAM transactions). The runner caches
one :class:`~repro.apps.common.AppRun` per configuration key so the four
harnesses share runs exactly the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..apps import get_app
from ..apps.common import AppRun
from ..sim.occupancy import LaunchConfig
from ..sim.specs import CostModel, DEFAULT_COST_MODEL, DeviceSpec, K20C

#: default dataset scale for experiment runs: keeps each simulated run in
#: the seconds range on a laptop while preserving degree/fanout skew
DEFAULT_SCALE = 1.0


@dataclass
class ExperimentRunner:
    scale: float = DEFAULT_SCALE
    spec: DeviceSpec = K20C
    cost: CostModel = DEFAULT_COST_MODEL
    verify: bool = True
    _cache: dict = field(default_factory=dict, repr=False)
    #: optional named datasets (e.g. Fig. 6's tree dataset1/dataset2)
    _datasets: dict = field(default_factory=dict, repr=False)

    def dataset(self, app_key: str, name: Optional[str] = None):
        """Default (or registered) dataset for an app, cached."""
        key = (app_key, name)
        if key not in self._datasets:
            if name is not None:
                raise KeyError(f"dataset {name!r} not registered")
            self._datasets[key] = get_app(app_key).default_dataset(self.scale)
        return self._datasets[key]

    def register_dataset(self, app_key: str, name: str, dataset) -> None:
        self._datasets[(app_key, name)] = dataset

    def run(self, app_key: str, variant: str, *, allocator: str = "custom",
            config: Optional[LaunchConfig] = None,
            dataset_name: Optional[str] = None,
            cost: Optional[CostModel] = None) -> AppRun:
        cfg_key = None
        if config is not None:
            cfg_key = (config.mode, config.blocks, config.threads)
        cost_obj = cost or self.cost
        key = (app_key, variant, allocator, cfg_key, dataset_name, id(cost_obj))
        if key not in self._cache:
            app = get_app(app_key)
            dataset = self.dataset(app_key, dataset_name)
            self._cache[key] = app.run(
                variant, dataset=dataset, allocator=allocator, config=config,
                spec=self.spec, cost=cost_obj, verify=self.verify,
            )
        return self._cache[key]

    def speedup_over_basic(self, app_key: str, variant: str, **kw) -> float:
        base = self.run(app_key, "basic-dp", **{k: v for k, v in kw.items()
                                                if k == "dataset_name"})
        other = self.run(app_key, variant, **kw)
        return base.metrics.cycles / other.metrics.cycles

"""Parallel, persistently-cached experiment runner.

The paper profiles the *same* executions for Figs. 7, 8, 9 and 10
(overall speedup, warp efficiency, occupancy, DRAM transactions), and
Fig. 5/6 sweep allocators and kernel configurations over a shared
baseline. The runner therefore treats application runs as cacheable
values addressed by their full input description:

1. **In-memory memoization** — runs are keyed by a resolved
   :class:`~repro.experiments.plan.RunSpec` (app, variant, allocator,
   launch config, dataset, *cost-model values*, threshold), so the four
   profiling harnesses share runs exactly the way the paper gathered its
   numbers. Keys compare by value: two equal cost models share an entry
   (the seed's ``id(cost_obj)`` key did not, and could collide after
   garbage collection reused an id).
2. **On-disk persistence** — with a :class:`~repro.experiments.store.ResultStore`
   attached, every executed run is written to a content-addressed cache,
   so repeated figure regeneration is warm-start across processes.
3. **Parallel prefetch** — :meth:`ExperimentRunner.prefetch` takes a
   :class:`~repro.experiments.plan.WorkPlan` (typically the deduplicated
   union of several figures' plans), filters out cached runs, and fans
   the rest across a process pool. Results are merged by key, so figure
   output is byte-identical regardless of worker count or completion
   order.

See DESIGN.md §8 for the architecture and the determinism argument.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field, replace
from typing import Iterable, Optional

from ..apps import get_app
from ..apps.common import AppRun
from ..sim.occupancy import LaunchConfig
from ..sim.specs import CostModel, DEFAULT_COST_MODEL, DeviceSpec, K20C
from ..telemetry import span
from .plan import RunSpec, WorkPlan
from .store import ResultStore, dataset_fingerprint, run_key

#: default dataset scale for experiment runs: keeps each simulated run in
#: the seconds range on a laptop while preserving degree/fanout skew
DEFAULT_SCALE = 1.0


@dataclass
class RunStats:
    """Where the runner's results came from.

    ``executed`` counts distinct simulations; the hit counters count
    *lookups served* — a run executed once and then recalled twice is
    1 executed + 2 memory hits.
    """

    executed: int = 0
    memory_hits: int = 0
    disk_hits: int = 0

    def describe(self) -> str:
        return (f"{self.executed} executed, {self.memory_hits} memory hits, "
                f"{self.disk_hits} disk hits")


def _execute(spec: RunSpec, dataset, device_spec: DeviceSpec,
             verify: bool) -> AppRun:
    """Execute one resolved RunSpec against a materialized dataset."""
    app = get_app(spec.app)
    return app.run(
        spec.variant,
        dataset=dataset,
        allocator=spec.allocator,
        config=spec.launch_config(device_spec),
        spec=device_spec,
        cost=spec.cost,
        verify=verify,
        threshold=spec.threshold,
        strategy=spec.strategy,
        backend=spec.backend,
        oracle=spec.oracle,
    )


#: per-worker state installed by :func:`_init_worker` — the datasets are
#: shipped once per worker (pool initializer), not once per task
_WORKER_STATE = None


def _init_worker(datasets, device_spec, verify) -> None:
    global _WORKER_STATE
    _WORKER_STATE = (datasets, device_spec, verify)


def _dataset_name(spec: RunSpec):
    """The name the runner materializes for a spec: its workload
    reference when set, else its registered-dataset name (or None)."""
    return spec.workload if spec.workload is not None else spec.dataset


def _execute_in_worker(spec: RunSpec) -> AppRun:
    datasets, device_spec, verify = _WORKER_STATE
    return _execute(spec, datasets[(spec.app, _dataset_name(spec))],
                    device_spec, verify)


def _pool_context():
    import multiprocessing
    import sys
    import threading

    # fork is cheap and inherits the app registry, but is only safe on
    # Linux (macOS system frameworks can abort forked children) and only
    # from a single-threaded process: the experiment service calls
    # prefetch from a worker thread while its event-loop thread is live,
    # and fork()ing then can deadlock the child on a lock some other
    # thread held at fork time — so any sign of threading selects spawn
    if (sys.platform == "linux"
            and threading.current_thread() is threading.main_thread()
            and threading.active_count() == 1):
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context("spawn")


@dataclass
class ExperimentRunner:
    scale: float = DEFAULT_SCALE
    spec: DeviceSpec = K20C
    cost: CostModel = DEFAULT_COST_MODEL
    verify: bool = True
    #: optional on-disk cache; None keeps the runner purely in-memory
    store: Optional[ResultStore] = None
    #: optional on-disk cache of materialized datasets
    #: (:class:`repro.workloads.DatasetCache`), typically beside ``store``
    dataset_cache: Optional[object] = None
    #: default worker count for :meth:`prefetch`
    jobs: int = 1
    #: optional tuned-config registry backing the ``'tuned'`` variant
    #: (:class:`repro.tuning.TunedConfigRegistry`; run ``repro tune``)
    tuned: Optional[object] = None
    #: which tuned objective the ``'tuned'`` variant resolves against
    tuned_objective: str = "cycles"
    #: surrogate training log (:class:`repro.oracle.TrainingLog`): every
    #: executed default-backend run appends one (axes -> metrics) row.
    #: ``None`` auto-derives the conventional log beside ``store`` when
    #: one is attached; pass ``False`` to disable logging entirely
    training_log: Optional[object] = None
    stats: RunStats = field(default_factory=RunStats, repr=False)
    _cache: dict = field(default_factory=dict, repr=False)
    #: optional named datasets (e.g. Fig. 6's tree dataset1/dataset2)
    _datasets: dict = field(default_factory=dict, repr=False)
    _fingerprints: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.training_log is None and self.store is not None:
            from ..oracle import TrainingLog

            self.training_log = TrainingLog.for_store(self.store)
        elif self.training_log is False:
            self.training_log = None

    # -- datasets -------------------------------------------------------------

    def dataset(self, app_key: str, name: Optional[str] = None):
        """The dataset an app runs on, cached per (app, name).

        ``None`` is the app's default workload; other names resolve to
        an explicitly registered dataset first (Fig. 6's tree datasets),
        then to the workload registry — materialized at this runner's
        scale, validated against the app's kind/symmetry requirements,
        and served through the on-disk dataset cache when one is
        attached."""
        key = (app_key, name)
        if key not in self._datasets:
            from ..workloads import materialize_for_app

            app = get_app(app_key)
            with span("runner.dataset", app=app_key, name=name,
                      scale=self.scale):
                self._datasets[key] = materialize_for_app(
                    app, name if name is not None else app.default_workload,
                    self.scale, cache=self.dataset_cache)
        return self._datasets[key]

    def _canonical_workload(self, app_key: str,
                            workload: Optional[str]) -> Optional[str]:
        """Canonicalize a workload reference; the app's own default
        folds onto None so the axis never forks pre-existing cache
        entries (:func:`repro.workloads.canonical_for_app`)."""
        from ..workloads import canonical_for_app

        return canonical_for_app(get_app(app_key), workload)

    def register_dataset(self, app_key: str, name: str, dataset) -> None:
        self._datasets[(app_key, name)] = dataset
        # the content address must track the dataset actually registered
        self._fingerprints.pop((app_key, name), None)

    def _fingerprint(self, app_key: str, name: Optional[str]) -> str:
        key = (app_key, name)
        if key not in self._fingerprints:
            self._fingerprints[key] = dataset_fingerprint(
                self.dataset(app_key, name))
        return self._fingerprints[key]

    # -- keying ---------------------------------------------------------------

    def tuned_entry(self, app: str, workload: Optional[str] = None):
        """The stored tuned config the ``'tuned'`` variant would run for
        an app x workload: the exact entry for this runner's tuning
        context (device spec, cost model, scale, verify flag, package
        version) when one exists, else the closest stored match by scale
        and device *for the same workload*. Returns None when nothing
        matching is stored."""
        if self.tuned is None:
            raise RuntimeError(
                "the 'tuned' variant needs a tuned-config registry "
                "attached to the runner (ExperimentRunner(tuned=...)); "
                f"run `repro tune {app}` to create one")
        from .. import __version__
        from ..tuning.registry import tuned_key

        workload = self._canonical_workload(app, workload)
        key = tuned_key(app=app, objective=self.tuned_objective,
                        spec=self.spec, cost=self.cost, scale=self.scale,
                        verify=self.verify, version=__version__,
                        workload=workload)
        entry = self.tuned.get(key)
        if entry is None:
            entry = self.tuned.lookup(app, self.tuned_objective,
                                      scale=self.scale,
                                      device=self.spec.name,
                                      workload=workload)
        return entry

    def _resolve_tuned(self, spec: RunSpec) -> RunSpec:
        """Lower a ``'tuned'`` spec onto the stored winning configuration
        (explicit per-spec threshold/config overrides still win; an
        explicit strategy contradicts the variant and is rejected)."""
        if spec.strategy is not None:
            raise ValueError(
                "variant 'tuned' takes its strategy from the stored "
                f"config; drop the explicit strategy {spec.strategy!r} "
                "or use variant 'consolidated'")
        entry = self.tuned_entry(spec.app, spec.workload)
        if entry is None:
            what = (f"app {spec.app!r}" if spec.workload is None else
                    f"app {spec.app!r} / workload {spec.workload!r}")
            raise KeyError(
                f"no tuned config for {what} / objective "
                f"{self.tuned_objective!r} in {self.tuned.path}; run "
                f"`repro tune {spec.app}` first")
        cand = entry.candidate
        from ..apps.common import CONS

        return replace(
            spec, variant=CONS, strategy=cand.strategy,
            threshold=(spec.threshold if spec.threshold is not None
                       else cand.threshold),
            config=(spec.config if spec.config is not None
                    else cand.config_key(self.spec)))

    def _resolve(self, spec: RunSpec) -> RunSpec:
        """Fill runner/app defaults so the spec fully determines the run."""
        from ..apps.common import TUNED, canonicalize_variant

        workload = self._canonical_workload(spec.app, spec.workload)
        if workload is not None and spec.dataset is not None:
            raise ValueError(
                "a RunSpec takes either a registered dataset name or a "
                f"workload reference, not both (got dataset="
                f"{spec.dataset!r}, workload={spec.workload!r})")
        if workload != spec.workload:
            spec = replace(spec, workload=workload)
        backend = self._canonical_backend(spec.backend)
        if backend != spec.backend:
            spec = replace(spec, backend=backend)
        oracle = self._canonical_oracle(spec.oracle)
        if oracle != spec.oracle:
            spec = replace(spec, oracle=oracle)
        if spec.variant == TUNED:
            spec = self._resolve_tuned(spec)
        variant, strategy = canonicalize_variant(spec.variant, spec.strategy)
        cost = spec.cost if spec.cost is not None else self.cost
        threshold = (spec.threshold if spec.threshold is not None
                     else get_app(spec.app).threshold)
        if (cost is spec.cost and threshold == spec.threshold
                and variant == spec.variant and strategy == spec.strategy):
            return spec
        return replace(spec, variant=variant, strategy=strategy,
                       cost=cost, threshold=threshold)

    @staticmethod
    def _canonical_backend(backend: Optional[str]) -> Optional[str]:
        """Canonicalize a backend name: the default simulator folds onto
        None (so the axis never forks pre-existing cache entries), other
        names are validated against the registry and must execute."""
        if backend is None:
            return None
        from ..backends import DEFAULT_BACKEND, get_backend

        resolved = get_backend(backend)  # raises BackendError if unknown
        if not resolved.executes:
            raise ValueError(
                f"backend {resolved.name!r} does not execute programs; "
                "use `repro compile --backend` for emit-only backends")
        if resolved.name == DEFAULT_BACKEND:
            return None
        return resolved.name

    @staticmethod
    def _canonical_oracle(oracle: Optional[str]) -> Optional[str]:
        """Canonicalize an oracle name: the default folds onto None (so
        the axis never forks pre-existing cache entries), other names
        are validated against the registry and must be exact — learned
        oracles approximate metrics and cannot *be* a run. Shared with
        :class:`repro.run_config.RunConfig` so both spellings agree."""
        from ..run_config import _canonical_oracle

        return _canonical_oracle(oracle)

    def _content_key(self, resolved: RunSpec) -> str:
        from .. import __version__

        return run_key(
            app=resolved.app,
            variant=resolved.variant,
            allocator=resolved.allocator,
            config=resolved.config,
            dataset_fp=self._fingerprint(resolved.app,
                                         _dataset_name(resolved)),
            cost=resolved.cost,
            spec=self.spec,
            threshold=resolved.threshold,
            verify=self.verify,
            version=__version__,
            strategy=resolved.strategy,
            workload=resolved.workload,
            backend=resolved.backend,
            oracle=resolved.oracle,
        )

    # -- execution ------------------------------------------------------------

    def _admit(self, resolved: RunSpec, run: AppRun) -> None:
        """Record a freshly *executed* run (memory + disk + stats)."""
        self.stats.executed += 1
        self._cache[resolved] = run
        if self.store is not None:
            with span("runner.store-put", app=resolved.app,
                      variant=resolved.variant):
                self.store.put(self._content_key(resolved), run)
        if (self.training_log is not None and resolved.backend is None
                and resolved.dataset is None):
            # surrogate training pair: only simulator runs on registry
            # workloads are reproducible training contexts (explicitly
            # registered datasets have no stable reference to featurize)
            self.training_log.record(
                app=resolved.app, workload=resolved.workload,
                device=self.spec.name, cost=resolved.cost,
                scale=self.scale, verify=self.verify,
                variant=resolved.variant, strategy=resolved.strategy,
                threshold=resolved.threshold, config=resolved.config,
                metrics=run.metrics)

    def _lookup(self, resolved: RunSpec) -> Optional[AppRun]:
        """Memory first, then the on-disk store (promoting hits)."""
        run = self._cache.get(resolved)
        if run is not None:
            self.stats.memory_hits += 1
            return run
        if self.store is not None:
            with span("runner.store-get", app=resolved.app,
                      variant=resolved.variant):
                run = self.store.get(self._content_key(resolved))
            if run is not None:
                self.stats.disk_hits += 1
                self._cache[resolved] = run
                return run
        return None

    def trim_memory(self) -> None:
        """Drop the in-process AppRun cache (the batch hook a long-lived
        service calls between batches).

        Only sensible with an on-disk store attached: the store keeps
        every result, so later lookups become disk hits instead of
        memory hits — whereas a one-shot figure run without a store
        would lose its only cache. AppRuns hold full result arrays,
        which is exactly what must not accumulate in a daemon that only
        ever ships metrics. Datasets and fingerprints are kept: they
        are bounded by the workload registry and expensive to rebuild.
        """
        self._cache.clear()

    def resolve(self, spec: RunSpec) -> RunSpec:
        """Public :meth:`_resolve`: fill every runner/app default so the
        returned spec fully determines (and uniquely keys) the run.

        Idempotent — resolving a resolved spec returns it unchanged —
        which is what lets the experiment service (:mod:`repro.service`)
        use resolved specs as coalescing keys and feed them straight
        back into :meth:`prefetch`.
        """
        return self._resolve(spec)

    def run_spec(self, spec: RunSpec) -> AppRun:
        """Execute (or recall) one RunSpec."""
        with span("runner.resolve", app=spec.app):
            resolved = self._resolve(spec)
        run = self._lookup(resolved)
        if run is None:
            dataset = self.dataset(resolved.app, _dataset_name(resolved))
            with span("runner.execute", app=resolved.app,
                      variant=resolved.variant):
                run = _execute(resolved, dataset, self.spec, self.verify)
            self._admit(resolved, run)
        return run

    def run(self, app_key: str, variant: str, *, allocator: str = "custom",
            config: Optional[LaunchConfig] = None,
            dataset_name: Optional[str] = None,
            cost: Optional[CostModel] = None,
            threshold: Optional[int] = None,
            strategy: Optional[str] = None,
            workload: Optional[str] = None,
            backend: Optional[str] = None,
            oracle: Optional[str] = None) -> AppRun:
        return self.run_spec(RunSpec(
            app=app_key, variant=variant, allocator=allocator,
            config=RunSpec.config_key(config), dataset=dataset_name,
            cost=cost, threshold=threshold, strategy=strategy,
            workload=workload, backend=backend, oracle=oracle,
        ))

    def run_config(self, app_key: str, config,
                   dataset_name: Optional[str] = None,
                   cost: Optional[CostModel] = None) -> AppRun:
        """Execute (or recall) one app under a unified
        :class:`repro.run_config.RunConfig` — the preferred entry point;
        :meth:`run`'s keyword spelling remains as the compatibility
        shim."""
        return self.run_spec(RunSpec.from_config(
            app_key, config, dataset=dataset_name, cost=cost))

    def prefetch(self, specs: Iterable[RunSpec],
                 jobs: Optional[int] = None,
                 executed: Optional[set] = None) -> RunStats:
        """Materialize every spec's run, fanning cache misses across a
        process pool.

        Returns the stats delta for this prefetch. With ``jobs <= 1`` (or
        one miss) execution is serial and in-process; either way the
        cache ends up in the same state, so downstream figure rendering
        is byte-identical.

        ``executed``, when given, is a set the runner fills with the
        *resolved* specs it actually simulated — the batch hook the
        experiment service uses to report per-request provenance
        (executed vs. served-from-cache) without re-probing the cache.
        """
        jobs = self.jobs if jobs is None else jobs
        before = replace(self.stats)
        missing = WorkPlan()
        for spec in specs:
            resolved = self._resolve(spec)
            if resolved not in missing and self._lookup(resolved) is None:
                missing.add(resolved)
        pending = list(missing)
        if executed is not None:
            executed.update(pending)
        datasets = {(r.app, _dataset_name(r)):
                    self.dataset(r.app, _dataset_name(r))
                    for r in pending}
        if jobs > 1 and len(pending) > 1:
            workers = min(jobs, len(pending))
            # worker processes are untraced; the pool shows up as one
            # span covering the whole fan-out
            with span("runner.prefetch", runs=len(pending), jobs=workers), \
                    ProcessPoolExecutor(
                    max_workers=workers, mp_context=_pool_context(),
                    initializer=_init_worker,
                    initargs=(datasets, self.spec, self.verify)) as pool:
                futures = {pool.submit(_execute_in_worker, r): r
                           for r in pending}
                for future in as_completed(futures):
                    self._admit(futures[future], future.result())
        else:
            with span("runner.prefetch", runs=len(pending), jobs=1):
                for resolved in pending:
                    with span("runner.execute", app=resolved.app,
                              variant=resolved.variant):
                        run = _execute(
                            resolved,
                            datasets[(resolved.app, _dataset_name(resolved))],
                            self.spec, self.verify)
                    self._admit(resolved, run)
        return RunStats(
            executed=self.stats.executed - before.executed,
            memory_hits=self.stats.memory_hits - before.memory_hits,
            disk_hits=self.stats.disk_hits - before.disk_hits,
        )

    # -- helpers --------------------------------------------------------------

    def speedup_over_basic(self, app_key: str, variant: str, **kw) -> float:
        base = self.run(app_key, "basic-dp",
                        **{k: v for k, v in kw.items()
                           if k in ("dataset_name", "workload")})
        other = self.run(app_key, variant, **kw)
        return base.metrics.cycles / other.metrics.cycles

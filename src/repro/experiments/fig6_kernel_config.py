"""Figure 6 — selection of the consolidated-kernel configuration (TD).

The paper compares, per consolidation granularity and on both tree
datasets, the KC_1 / KC_16 / KC_32 configurations against the *1-1
mapping* baseline and the best configuration found by exhaustive search.
Published findings:

* KC_1 is best for grid-, KC_16 for block-, KC_32 for warp-level;
* the KC choice beats 1-1 mapping clearly (especially warp/block level);
* the KC rule reaches ~97% of the exhaustively found optimum on average.
"""

from __future__ import annotations

from ..sim.occupancy import LaunchConfig, kc_config
from .plan import RunSpec, WorkPlan
from .reporting import PaperClaim, Table, geomean
from .runner import ExperimentRunner

APP = "td"
GRANULARITIES = ("warp-level", "block-level", "grid-level")
#: paper's KC_X rule: which X "belongs" to which granularity
KC_HOME = {"warp-level": 32, "block-level": 16, "grid-level": 1}

#: (B, T) candidates for the exhaustive-search reference. A trimmed grid —
#: the full sweep of [16]'s autotuner is quadratic; these cover the
#: decision space (few big blocks ... many small blocks).
def exhaustive_configs(spec) -> list[tuple[int, int]]:
    out = []
    for threads in (64, 128, 256, 512):
        for x in (1, 4, 16, 32):
            out.append((kc_config(spec, x, threads)[0], threads))
    return sorted(set(out))


def _kc_configs(spec) -> dict[str, LaunchConfig]:
    cfgs = {}
    for x in (1, 16, 32):
        blocks, threads = kc_config(spec, x)
        cfgs[f"KC_{x}"] = LaunchConfig(mode="explicit", blocks=blocks,
                                       threads=threads, spec=spec)
    return cfgs


def register_datasets(runner: ExperimentRunner) -> list[str]:
    from ..workloads.generators import tree_dataset1, tree_dataset2

    names = ["dataset1", "dataset2"]
    try:
        runner.dataset(APP, "dataset1")
    except KeyError:  # not registered (and no such workload exists)
        runner.register_dataset(APP, "dataset1", tree_dataset1(runner.scale))
        runner.register_dataset(APP, "dataset2", tree_dataset2(runner.scale))
    return names


def plan(runner: ExperimentRunner, exhaustive: bool = True) -> WorkPlan:
    """Every run :func:`compute` will request, for batch prefetching.

    Registers the Fig. 6 tree datasets on the runner as a side effect
    (the plan's specs reference them by name).
    """
    datasets = register_datasets(runner)
    configs = [RunSpec.config_key(cfg) for cfg in _kc_configs(runner.spec).values()]
    configs.append(("one2one", None, None))
    if exhaustive:
        configs.extend(("explicit", blocks, threads)
                       for blocks, threads in exhaustive_configs(runner.spec))
    out = WorkPlan()
    for ds in datasets:
        out.add(RunSpec(APP, "basic-dp", dataset=ds))
        out.extend(RunSpec(APP, gran, config=cfg, dataset=ds)
                   for gran in GRANULARITIES for cfg in configs)
    return out


def compute(runner: ExperimentRunner, exhaustive: bool = True) -> Table:
    datasets = register_datasets(runner)
    kc = _kc_configs(runner.spec)
    one2one = LaunchConfig(mode="one2one", spec=runner.spec)
    table = Table(
        title="Fig. 6 — Tree Descendants kernel configurations "
              "(speedup over basic-dp)",
        columns=["dataset", "granularity", "KC_1", "KC_16", "KC_32",
                 "1-1 mapping", "exhaustive", "KC-rule/exhaustive"],
    )
    for ds in datasets:
        base = runner.run(APP, "basic-dp", dataset_name=ds)
        for gran in GRANULARITIES:
            speedups = {}
            for name, cfg in kc.items():
                run = runner.run(APP, gran, config=cfg, dataset_name=ds)
                speedups[name] = base.metrics.cycles / run.metrics.cycles
            run = runner.run(APP, gran, config=one2one, dataset_name=ds)
            speedups["1-1 mapping"] = base.metrics.cycles / run.metrics.cycles
            if exhaustive:
                best = 0.0
                for blocks, threads in exhaustive_configs(runner.spec):
                    cfg = LaunchConfig(mode="explicit", blocks=blocks,
                                       threads=threads, spec=runner.spec)
                    r = runner.run(APP, gran, config=cfg, dataset_name=ds)
                    best = max(best, base.metrics.cycles / r.metrics.cycles)
                speedups["exhaustive"] = best
            else:
                speedups["exhaustive"] = float("nan")
            home = speedups[f"KC_{KC_HOME[gran]}"]
            ratio = home / speedups["exhaustive"] if exhaustive else float("nan")
            table.add(ds, gran, speedups["KC_1"], speedups["KC_16"],
                      speedups["KC_32"], speedups["1-1 mapping"],
                      speedups["exhaustive"], ratio)
    table.notes.append("paper: KC rule reaches ~97% of exhaustive search")
    return table


def claims(table: Table) -> list[PaperClaim]:
    out = []
    col = table.columns.index
    ok_home = True
    for row in table.rows:
        gran = row[col("granularity")]
        home = row[col(f"KC_{KC_HOME[gran]}")]
        others = [row[col(f"KC_{x}")] for x in (1, 16, 32)
                  if x != KC_HOME[gran]]
        # the home KC must be at least competitive with the other KCs
        if home < 0.85 * max(others):
            ok_home = False
    out.append(PaperClaim(
        "KC_1/KC_16/KC_32 are the right choices for grid/block/warp",
        "best per granularity", "home KC within 15% of best KC" if ok_home
        else "home KC loses", ok_home,
    ))
    home_vs_one = all(
        row[col(f"KC_{KC_HOME[row[col('granularity')]]}")]
        >= row[col("1-1 mapping")] * 0.95
        for row in table.rows
    )
    out.append(PaperClaim(
        "KC rule beats the 1-1 mapping baseline",
        "much better, esp. warp/block", "holds" if home_vs_one else "violated",
        home_vs_one,
    ))
    ratios = [row[col("KC-rule/exhaustive")] for row in table.rows]
    avg = geomean([r for r in ratios if r == r])
    out.append(PaperClaim(
        "KC rule vs exhaustive optimum", "~97%", f"{avg:.0%}", avg >= 0.80,
    ))
    return out


def main(runner: ExperimentRunner | None = None, exhaustive: bool = True) -> str:
    runner = runner or ExperimentRunner()
    table = compute(runner, exhaustive=exhaustive)
    lines = [table.render(), ""]
    lines += [c.render() for c in claims(table)]
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(main())

#!/usr/bin/env python3
"""Parallel recursion: tree traversals under consolidation.

Tree Descendants is the paper's pathological case: the natural recursive
port launches a ``<<<1,1>>>`` kernel *per tree node*. Consolidation turns
that into one kernel launch per tree level — grid-level consolidation of a
recursive kernel literally *is* level-synchronous traversal, which the
paper points out in §VI when comparing against [3].

This example shows the recursion depth collapsing: basic-dp needs
thousands of nested launches; the consolidated code needs one per level.

Run:  python examples/parallel_recursion_trees.py
"""

from repro.apps import BASIC, BLOCK, FLAT, GRID, WARP, get_app
from repro.compiler import consolidate_source
from repro.workloads.generators import tree_dataset1, tree_dataset2
from repro.experiments.reporting import Table


def main():
    app = get_app("td")
    for dataset in (tree_dataset1(0.5), tree_dataset2(0.5)):
        print(f"dataset: {dataset.stats()}")
        table = Table(
            title=f"Tree Descendants on {dataset.name}",
            columns=["variant", "cycles", "child launches", "speedup"],
        )
        base = None
        for variant in (BASIC, FLAT, WARP, BLOCK, GRID):
            run = app.run(variant, dataset=dataset)
            m = run.metrics
            if base is None:
                base = m.cycles
            table.add(variant, f"{m.cycles:,.0f}", m.device_launches,
                      base / m.cycles)
        print(table.render())
        print()

    # show the consolidated recursion: the kernel relaunches *itself* on
    # the next level's buffer
    result = consolidate_source(app.annotated_source(), granularity="grid")
    print("generated recursive kernel (grid level):")
    source = result.source
    start = source.index("__global__ void td_rec_cons_grid")
    print(source[start:start + 900], "...\n")
    print(f"report: {result.report.describe()}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: consolidate a naive dynamic-parallelism kernel and watch it
get fast.

This walks the full pipeline on a small SSSP-style kernel:

1. write naive CUDA where every overloaded thread launches a child kernel
   (the paper's Fig. 1 "basic-dp" template) and annotate it with
   ``#pragma dp``;
2. run it as-is on the simulated Tesla K20c -> slow, thousands of launches;
3. let the compiler consolidate it at block level -> one launch per block;
4. compare cycles, launch counts, warp efficiency — and verify both
   variants computed the same distances.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.compiler import consolidate_source
from repro.data import citeseer_like
from repro.sim import Device

ANNOTATED = r"""
__global__ void relax_child(int* row_ptr, int* col_idx, int* weights,
                            int* dist, int* changed, int u) {
    int du = dist[u];
    int beg = row_ptr[u];
    int deg = row_ptr[u + 1] - beg;
    int t = threadIdx.x;
    if (t < deg) {
        int v = col_idx[beg + t];
        int alt = du + weights[beg + t];
        if (alt < atomicMin(&dist[v], alt)) { changed[0] = 1; }
    }
}

__global__ void relax(int* row_ptr, int* col_idx, int* weights, int* dist,
                      int* changed, int n, int threshold) {
    int u = blockIdx.x * blockDim.x + threadIdx.x;
    if (u < n) {
        int du = dist[u];
        if (du < INT_MAX) {
            int beg = row_ptr[u];
            int deg = row_ptr[u + 1] - beg;
            #pragma dp consldt(block) buffer(type: custom) work(u)
            if (deg > threshold) {
                relax_child<<<1, deg>>>(row_ptr, col_idx, weights, dist,
                                        changed, u);
            } else {
                for (int i = 0; i < deg; i++) {
                    int v = col_idx[beg + i];
                    int alt = du + weights[beg + i];
                    if (alt < atomicMin(&dist[v], alt)) { changed[0] = 1; }
                }
            }
        }
    }
}
"""

INF = 2**31 - 1


def run(source, graph, label):
    device = Device()  # a fresh simulated K20c
    program = device.load(source)
    n = graph.num_nodes
    row_ptr = device.from_numpy("row_ptr", graph.row_ptr.astype(np.int32))
    col_idx = device.from_numpy("col_idx", graph.col_idx.astype(np.int32))
    weights = device.from_numpy("weights", graph.weights.astype(np.int32))
    d0 = np.full(n, INF, dtype=np.int32)
    d0[0] = 0
    dist = device.from_numpy("dist", d0)
    changed = device.from_numpy("changed", np.zeros(1, dtype=np.int32))
    while True:
        changed.data[0] = 0
        program.launch("relax", (n + 127) // 128, 128, row_ptr, col_idx,
                       weights, dist, changed, n, 8)
        if changed.data[0] == 0:
            break
    metrics = device.synchronize()
    print(f"--- {label}")
    print(metrics.summary())
    print()
    return dist.to_numpy(), metrics


def main():
    graph = citeseer_like(scale=0.5)
    print(f"dataset: {graph.stats()}\n")

    baseline_dist, baseline = run(ANNOTATED, graph, "basic dynamic parallelism")

    result = consolidate_source(ANNOTATED, granularity="block")
    print(f"compiler: {result.report.describe()}\n")
    cons_dist, cons = run(result.source, graph, "block-level consolidation")

    assert np.array_equal(baseline_dist, cons_dist), "results must match!"
    print(f"identical distances: True")
    print(f"speedup over basic-dp: {baseline.cycles / cons.cycles:.1f}x")
    print(f"child launches: {baseline.device_launches} -> {cons.device_launches}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Irregular loops: SpMV with long-row delegation, across all granularities
and all three buffer allocators.

This is the paper's §II.B "irregular loops" pattern on a real workload:
CSR SpMV where rows longer than a threshold are delegated to child
kernels. The sweep reproduces in miniature what Figs. 5 and 7 measure —
pick a granularity, pick an allocator, see the cost move.

Run:  python examples/irregular_loops_spmv.py
"""

from repro.apps import BASIC, BLOCK, FLAT, GRID, WARP, get_app
from repro.experiments.reporting import Table


def main():
    app = get_app("spmv")
    dataset = app.default_dataset(scale=0.5)
    print(f"dataset: {dataset.stats()}\n")

    base = app.run(BASIC, dataset=dataset)
    print(f"basic-dp: {base.metrics.cycles:,.0f} cycles, "
          f"{base.metrics.device_launches} child launches\n")

    table = Table(
        title="SpMV: speedup over basic-dp by granularity and allocator",
        columns=["variant", "pre-alloc", "halloc", "default", "launches"],
    )
    flat = app.run(FLAT, dataset=dataset)
    table.add("no-dp (flat)", base.metrics.cycles / flat.metrics.cycles,
              "-", "-", 0)
    for variant in (WARP, BLOCK, GRID):
        row = [variant]
        launches = 0
        for alloc in ("custom", "halloc", "default"):
            run = app.run(variant, dataset=dataset, allocator=alloc)
            row.append(base.metrics.cycles / run.metrics.cycles)
            launches = run.metrics.device_launches
        row.append(launches)
        table.add(*row)
    print(table.render())
    print("\nthings to notice (paper §V.A):")
    print(" * the pre-allocated pool wins wherever many buffers are allocated")
    print(" * grid-level allocates a single buffer, so allocators tie there")
    print(" * every consolidated variant crushes basic-dp")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The §IV.C *multi-block and multi-thread* child case.

When the basic-dp child kernel already spans multiple blocks
(``<<<G, T>>>`` with a grid-stride body), the consolidated kernel wraps
the original body in a work-item loop and lets *all* threads cooperate on
each item. This example uses a segmented-reduction workload: each work
item is a long segment reduced by the whole grid.

Run:  python examples/multiblock_consolidation.py
"""

import numpy as np

from repro.compiler import consolidate_source
from repro.sim import Device

SRC = r"""
__global__ void reduce_child(int* data, int* seg_ptr, int* sums, int s) {
    int beg = seg_ptr[s];
    int len = seg_ptr[s + 1] - beg;
    for (int i = blockIdx.x * blockDim.x + threadIdx.x; i < len;
         i += gridDim.x * blockDim.x) {
        atomicAdd(&sums[s], data[beg + i]);
    }
}

__global__ void reduce_parent(int* data, int* seg_ptr, int* sums, int n,
                              int threshold) {
    int s = blockIdx.x * blockDim.x + threadIdx.x;
    if (s < n) {
        int beg = seg_ptr[s];
        int len = seg_ptr[s + 1] - beg;
        #pragma dp consldt(grid) work(s) threads(128) blocks(13)
        if (len > threshold) {
            reduce_child<<<(len + 127) / 128, 128>>>(data, seg_ptr, sums, s);
        } else {
            int acc = 0;
            for (int i = 0; i < len; i++) acc += data[beg + i];
            atomicAdd(&sums[s], acc);
        }
    }
}
"""


def run(source, data, seg_ptr, n, label):
    dev = Device()
    prog = dev.load(source)
    d = dev.from_numpy("data", data)
    p = dev.from_numpy("seg_ptr", seg_ptr)
    sums = dev.from_numpy("sums", np.zeros(n, dtype=np.int32))
    prog.launch("reduce_parent", (n + 63) // 64, 64, d, p, sums, n, 32)
    metrics = dev.synchronize()
    print(f"{label:28s} cycles={metrics.cycles:>12,.0f} "
          f"launches={metrics.device_launches}")
    return sums.to_numpy(), metrics


def main():
    rng = np.random.default_rng(0)
    n = 96
    lengths = np.where(rng.random(n) < 0.15,
                       rng.integers(200, 800, n),  # a few huge segments
                       rng.integers(1, 24, n))
    seg_ptr = np.zeros(n + 1, dtype=np.int64)
    seg_ptr[1:] = np.cumsum(lengths)
    data = rng.integers(0, 10, int(seg_ptr[-1])).astype(np.int32)
    expected = np.add.reduceat(data, seg_ptr[:-1]).astype(np.int32)

    base_sums, base = run(SRC, data, seg_ptr.astype(np.int32), n, "basic-dp")
    result = consolidate_source(SRC, granularity="grid")
    print(f"\n{result.report.describe()}\n")
    cons_sums, cons = run(result.source, data, seg_ptr.astype(np.int32), n,
                          "grid-level consolidation")

    assert np.array_equal(base_sums, expected)
    assert np.array_equal(cons_sums, expected)
    print(f"\nboth variants match the NumPy reduction; "
          f"speedup {base.cycles / cons.cycles:.1f}x")
    # show the generated drain loop
    text = result.source
    start = text.index("__global__ void reduce_child_cons_grid")
    print("\ngenerated multi-block drain kernel:\n")
    print(text[start:start + 700], "...")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""A tour of the consolidation compiler's output.

Prints the CUDA the compiler generates for one annotated kernel at every
granularity, annotated with what each piece corresponds to in the paper
(§IV.C's five parent-transformation steps and the child drain loop).

Run:  python examples/compiler_tour.py [warp|block|grid]
"""

import sys

from repro.apps import get_app
from repro.compiler import consolidate_source

EXPLANATIONS = {
    "warp": """
warp-level consolidation (KC_32 configuration):
  * pushes go to one buffer per *warp* (scope key: instance/block/warp);
  * __syncwarp() is the paper's "implicit" lockstep barrier — it costs
    nothing but pins the reconvergence point;
  * lane 0 (threadIdx.x %% 32 == 0) launches the consolidated child.
""",
    "block": """
block-level consolidation (KC_16 configuration):
  * pushes go to one buffer per *block*;
  * __syncthreads() separates the insertions from the launch (§IV.C
    step 4);
  * thread 0 launches one consolidated child per block.
""",
    "grid": """
grid-level consolidation (KC_1 configuration):
  * a single buffer serves the whole grid;
  * the custom exit-style global barrier (__dp_grid_arrive_last) picks the
    LAST block to finish insertions — all other blocks simply exit, which
    is how the paper avoids the deadlock a spin barrier would cause;
  * the last block launches the consolidated child (and, when postwork
    exists, cudaDeviceSynchronize() + the consolidated postwork kernel).
""",
}


def main():
    grans = sys.argv[1:] or ["warp", "block", "grid"]
    annotated = get_app("sssp").annotated_source()
    print("input (annotated basic-dp SSSP):")
    print(annotated)
    for gran in grans:
        result = consolidate_source(annotated, granularity=gran)
        print("=" * 72)
        print(EXPLANATIONS[gran])
        print(f"report: {result.report.describe()}\n")
        print(result.source)


if __name__ == "__main__":
    main()

"""Sim-engine bench: scalar vs vectorized functional engine.

Two levels, both equality-asserted (a bench that silently diverged
would be timing two different computations):

* **apps** — end-to-end wall-clock per app x variant, the vectorized
  engine (the default) against the scalar reference selected via
  ``oracle="sim-scalar"``. RunMetrics must match field for field. This
  measures the *live* speedup, which is bounded by everything batching
  cannot touch (kernel-generator Python, divergent rounds, the timing
  model).
* **slice** — the round bookkeeping hot path, replayed: a recorded
  stream of uniform load/store rounds (default width: one full block's
  worth of lockstep lanes, i.e. 32 warps executing the same round) is
  processed once through the scalar engine's per-event loop (its actual
  helpers — ``DeviceArray.load/store/addr_of``, :func:`coalesce_round`,
  ``MemorySystem.access_segments``) and once through the vectorized
  engine's array core (:func:`segment_probe_order` + NumPy
  gather/scatter, the body of ``_batch_loads``/``_batch_stores``).
  Cycles, L2 hit/miss counters, DRAM transactions, lane values and
  final array contents must all be identical; the speedup on this
  slice is the >=10x target.

Emits ``BENCH_sim.json`` through :mod:`_emit`::

    PYTHONPATH=src python benchmarks/bench_sim_engine.py --scale 0.1
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time

import numpy as np

from _emit import emit_json

from repro.apps import BASIC, GRID, WARP, get_app
from repro.sim.device import Device
from repro.sim.engine import coalesce_round
from repro.sim.engine_vec import segment_probe_order
from repro.sim.events import LD, ST

#: end-to-end cells: the cheapest and the most consolidation-heavy
#: variants of two paper apps (the differential test matrix covers all
#: 7 x 4; the bench keeps wall-clock in the seconds range)
CASES = [("sssp", BASIC), ("sssp", WARP), ("sssp", GRID),
         ("spmv", BASIC), ("spmv", GRID)]


# -- end-to-end apps ----------------------------------------------------------


def time_apps(scale: float, reps: int = 3) -> dict:
    rows = {}
    for key, variant in CASES:
        app = get_app(key)
        dataset = app.default_dataset(scale)
        scalar_s, vec_s = [], []
        for _ in range(reps):  # alternated, best-of: tames compile noise
            t0 = time.perf_counter()
            ref = app.run(variant, dataset=dataset, verify=False,
                          oracle="sim-scalar")
            t1 = time.perf_counter()
            vec = app.run(variant, dataset=dataset, verify=False)
            t2 = time.perf_counter()
            scalar_s.append(t1 - t0)
            vec_s.append(t2 - t1)
            if (dataclasses.asdict(ref.metrics)
                    != dataclasses.asdict(vec.metrics)):
                raise AssertionError(
                    f"vectorized engine diverged on {key} [{variant}]")
        rows[f"{key}:{variant}"] = {
            "scalar_s": round(min(scalar_s), 4),
            "vectorized_s": round(min(vec_s), 4),
            "speedup": round(min(scalar_s) / max(min(vec_s), 1e-9), 2),
        }
    return rows


# -- the bookkeeping slice ----------------------------------------------------


def _record_rounds(rounds: int, width: int, n: int):
    """The recorded stream: alternating uniform load and store rounds
    of ``width`` lockstep lanes walking the array coalesced — the shape
    of a flat streaming kernel's hot loop, and exactly the rounds the
    vectorized engine batches. Indices/values are recorded as arrays
    (the batched processor's native form); the scalar replay expands
    them to the per-event tuples the scalar engine consumes."""
    stream = []
    for r in range(rounds):
        base = (r * width) % max(n - width, 1)
        idxs = np.arange(base, base + width, dtype=np.int64)
        if r % 2 == 0:
            stream.append((LD, idxs, None))
        else:
            values = (np.arange(width, dtype=np.int64) + r) % 2_000_000
            stream.append((ST, idxs, values))
    return stream


def _fresh_path(n: int):
    dev = Device()
    arr = dev.from_numpy("a", np.zeros(n, dtype=np.int32))
    return dev.engine, arr


def _replay_scalar(stream, arr, mem, cost, seg_bytes):
    """Line-faithful to FunctionalEngine's sequential round handling:
    per-event load/store, (addr, itemsize) access list, coalesce_round,
    one access_segments call per round. Event tuples are prebuilt so
    the timed region covers processing only (the live engine receives
    them from kernel generators)."""
    rounds = []
    for op, idxs, values in stream:
        if op == LD:
            rounds.append([(LD, arr, int(i)) for i in idxs])
        else:
            rounds.append([(ST, arr, int(i), int(v))
                           for i, v in zip(idxs, values)])
    pending = [None] * max(len(e) for e in rounds)
    cycles = 0
    t0 = time.perf_counter()
    for events in rounds:
        accesses = []
        for i, ev in enumerate(events):
            a = ev[1]
            if ev[0] == LD:
                pending[i] = a.load(ev[2])
            else:
                a.store(ev[2], ev[3])
            accesses.append((a.addr_of(ev[2]), a.itemsize))
        segments = coalesce_round(accesses, seg_bytes)
        cycles += cost.cycles_per_warp_step + mem.access_segments(segments)
    return cycles, pending, time.perf_counter() - t0


def _replay_vectorized(stream, arr, mem, cost, seg_bytes):
    """The batched array processor: the engine's round core
    (:func:`segment_probe_order` + NumPy gather/scatter, the body of
    ``_batch_loads``/``_batch_stores``) driven straight from the
    recorded arrays."""
    pending = [None] * max(len(idxs) for _, idxs, _ in stream)
    data = arr.data
    base_addr, offset, itemsize = arr.base_addr, arr.offset, arr.itemsize
    cycles = 0
    t0 = time.perf_counter()
    for op, idxs, values in stream:
        i_arr = idxs + offset
        if op == LD:
            # .tolist() yields the same Python scalars as per-lane .item()
            pending[:len(idxs)] = data[i_arr].tolist()
        else:
            data[i_arr] = values
        segments = segment_probe_order(base_addr + i_arr * itemsize,
                                       itemsize, seg_bytes)
        cycles += cost.cycles_per_warp_step + mem.access_segments(segments)
    return cycles, pending, time.perf_counter() - t0


def time_slice(rounds: int, width: int) -> dict:
    n = max(width * 4, 1 << 14)
    stream = _record_rounds(rounds, width, n)

    scalar_engine, scalar_arr = _fresh_path(n)
    s_cycles, s_pending, scalar_s = _replay_scalar(
        stream, scalar_arr, scalar_engine.mem, scalar_engine.cost,
        scalar_engine.spec.dram_segment_bytes)

    vec_engine, vec_arr = _fresh_path(n)
    v_cycles, v_pending, vec_s = _replay_vectorized(
        stream, vec_arr, vec_engine.mem, vec_engine.cost,
        vec_engine.spec.dram_segment_bytes)

    # bitwise equality across every observable of the slice
    sc, vc = scalar_engine.mem.counters, vec_engine.mem.counters
    if s_cycles != v_cycles:
        raise AssertionError(f"cycle divergence: {s_cycles} != {v_cycles}")
    if (sc.l2_hits, sc.l2_misses, sc.dram_transactions) != \
            (vc.l2_hits, vc.l2_misses, vc.dram_transactions):
        raise AssertionError("L2/DRAM counter divergence on the slice")
    if s_pending != v_pending:
        raise AssertionError("lane-value divergence on the slice")
    if not np.array_equal(scalar_arr.data, vec_arr.data):
        raise AssertionError("array-content divergence on the slice")

    events = sum(len(idxs) for _, idxs, _ in stream)
    return {
        "rounds": rounds,
        "width": width,
        "events": events,
        "cycles": s_cycles,
        "l2_hits": sc.l2_hits,
        "dram_transactions": sc.dram_transactions,
        "scalar_s": round(scalar_s, 4),
        "vectorized_s": round(vec_s, 4),
        "speedup": round(scalar_s / max(vec_s, 1e-9), 1),
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--scale", type=float, default=0.1,
                    help="dataset scale for the end-to-end cells")
    ap.add_argument("--rounds", type=int, default=800,
                    help="recorded rounds in the bookkeeping slice")
    ap.add_argument("--width", type=int, default=1024,
                    help="lockstep lanes per recorded round (default: a "
                         "full block's worth — 32 warps in lockstep)")
    args = ap.parse_args(argv)

    apps = time_apps(args.scale)
    slice_row = time_slice(args.rounds, args.width)

    print(f"{'cell':<18} {'scalar':>9} {'vectorized':>11} {'speedup':>8}")
    for cell, row in apps.items():
        print(f"{cell:<18} {row['scalar_s']:>8.3f}s "
              f"{row['vectorized_s']:>10.3f}s {row['speedup']:>7.2f}x")
    print(f"{'slice (' + str(slice_row['events']) + ' events)':<18} "
          f"{slice_row['scalar_s']:>8.3f}s "
          f"{slice_row['vectorized_s']:>10.3f}s "
          f"{slice_row['speedup']:>7.1f}x")

    path = emit_json("sim", {
        "scale": args.scale,
        "apps": apps,
        "slice": slice_row,
    })
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Fig. 6 bench: consolidated-kernel configuration selection on TD."""

from conftest import emit, emit_table

from repro.experiments import fig6_kernel_config


def test_fig6_kernel_config(benchmark, runner):
    table = benchmark.pedantic(
        lambda: fig6_kernel_config.compute(runner, exhaustive=True),
        rounds=1, iterations=1,
    )
    claims = fig6_kernel_config.claims(table)
    emit("Figure 6 — kernel configurations (Tree Descendants)",
         table.render() + "\n" + "\n".join(c.render() for c in claims))
    emit_table("fig6_kernel_config", table, benchmark)
    assert len(table.rows) == 6  # 2 datasets x 3 granularities

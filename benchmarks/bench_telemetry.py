"""Telemetry overhead bench: tracing off must be free, on must be honest.

Three modes of the same end-to-end cell (sssp consolidated, the most
span-dense variant), interleaved best-of-``--reps``:

* **control** — the instrumented modules' ``span`` bindings patched to
  a bare function returning ``NULL_SPAN``: the cost of the code with
  telemetry compiled out. The baseline the off-path is held against.
* **off** — the shipping default: the real :func:`repro.telemetry.span`
  with no active tracer (one global read + one ContextVar read per
  call site, no allocation). **Asserted** to be within
  ``--max-overhead`` (default 2%) of control.
* **on** — inside ``tracing(Tracer())``, spans recorded and exported.
  The overhead is *reported* (it is the price of asking for a trace,
  not a regression gate).

RunMetrics are equality-asserted across all three modes in both
directions (off vs on and on vs off against the control run of the same
rep): telemetry must never perturb what the simulator computes, only
observe it.

Emits ``BENCH_telemetry.json`` through :mod:`_emit`::

    PYTHONPATH=src python benchmarks/bench_telemetry.py --scale 0.1
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time

from _emit import emit_json

from repro.apps import CONS, get_app
from repro.telemetry import NULL_SPAN, Tracer, chrome_trace, tracing

#: modules holding a ``span`` binding on the traced app path; the
#: control mode rebinds each to a no-op (runner is off-path for
#: ``app.run`` but patched anyway so the list is the full roster)
INSTRUMENTED = ("repro.apps.common", "repro.sim.device",
                "repro.sim.engine", "repro.experiments.runner")


def _noop_span(name, /, **attrs):
    return NULL_SPAN


class patched_out:
    """Rebind ``span`` to a no-op in every instrumented module."""

    def __enter__(self):
        import importlib

        self._saved = []
        for modname in INSTRUMENTED:
            mod = importlib.import_module(modname)
            self._saved.append((mod, mod.span))
            mod.span = _noop_span
        return self

    def __exit__(self, *exc):
        for mod, original in self._saved:
            mod.span = original
        return False


def time_modes(scale: float, reps: int) -> tuple[dict, dict]:
    app = get_app("sssp")
    dataset = app.default_dataset(scale)

    def cell():
        t0 = time.perf_counter()
        run = app.run(CONS, dataset=dataset, verify=False)
        return time.perf_counter() - t0, dataclasses.asdict(run.metrics)

    control_s, off_s, on_s = [], [], []
    spans = 0
    for _ in range(reps):  # alternated, best-of: tames scheduler noise
        with patched_out():
            t, m_control = cell()
        control_s.append(t)
        t, m_off = cell()
        off_s.append(t)
        tracer = Tracer()
        with tracing(tracer):
            t, m_on = cell()
        on_s.append(t)
        spans = len(tracer)
        # never-perturb, both ways: tracing off and tracing on each
        # reproduce the control metrics bit for bit
        if m_off != m_control or m_control != m_off:
            raise AssertionError("tracing-off run perturbed RunMetrics")
        if m_on != m_control or m_control != m_on:
            raise AssertionError("tracing-on run perturbed RunMetrics")
        if m_on != m_off or m_off != m_on:
            raise AssertionError("traced and untraced RunMetrics diverge")
    # the exporter is part of the tracing-on price; time it once
    t0 = time.perf_counter()
    events = len(chrome_trace(tracer)["traceEvents"])
    export_s = time.perf_counter() - t0

    best = {"control_s": min(control_s), "off_s": min(off_s),
            "on_s": min(on_s)}
    detail = {"spans": spans, "events": events,
              "export_s": round(export_s, 5), "reps": reps}
    return best, detail


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--scale", type=float, default=0.1,
                    help="dataset scale for the cell (default 0.1)")
    ap.add_argument("--reps", type=int, default=5,
                    help="interleaved repetitions, best-of (default 5)")
    ap.add_argument("--max-overhead", type=float, default=0.02,
                    help="tracing-off overhead gate vs control "
                         "(fraction, default 0.02)")
    args = ap.parse_args(argv)

    best, detail = time_modes(args.scale, args.reps)
    off_overhead = max(0.0, best["off_s"] / best["control_s"] - 1.0)
    on_overhead = max(0.0, best["on_s"] / best["control_s"] - 1.0)

    print(f"{'mode':<10} {'best':>9}   overhead vs control")
    print(f"{'control':<10} {best['control_s']:>8.4f}s   -")
    print(f"{'off':<10} {best['off_s']:>8.4f}s   {100 * off_overhead:.2f}%"
          f"   (gate: <{100 * args.max_overhead:.0f}%)")
    print(f"{'on':<10} {best['on_s']:>8.4f}s   {100 * on_overhead:.2f}%"
          f"   ({detail['spans']} spans, export {detail['export_s']}s)")

    if off_overhead >= args.max_overhead:
        raise AssertionError(
            f"tracing-off overhead {100 * off_overhead:.2f}% breaches the "
            f"{100 * args.max_overhead:.0f}% gate: the disabled span path "
            "is supposed to be one global + one ContextVar read")

    path = emit_json("telemetry", {
        "scale": args.scale,
        "cell": "sssp:consolidated",
        "control_s": round(best["control_s"], 4),
        "off_s": round(best["off_s"], 4),
        "on_s": round(best["on_s"], 4),
        "off_overhead": round(off_overhead, 4),
        "on_overhead": round(on_overhead, 4),
        "metrics_equal": True,
        **detail,
    })
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

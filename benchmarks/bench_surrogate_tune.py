"""Surrogate-tune bench: exhaustive grid vs surrogate-assisted halving.

Three tunes of the same bounded space, each against a fresh result
store (so every executed count is real simulations, not cache hits):

1. **grid** — every candidate at full fidelity: the ground-truth
   winner, and the most simulations;
2. **halving-sim** — successive halving with the simulation oracle:
   fewer simulations, same winner class;
3. **halving-surrogate** — successive halving with the learned
   surrogate as prefilter, trained on the grid run's training log: the
   cheap rungs are answered by prediction (zero simulations), only the
   final rung simulates. Strictly fewer simulations than halving-sim,
   and the reported winner is always a full-fidelity simulated trial.

The bench asserts tuned-quality parity (the surrogate tune's winner
value must match the grid winner's within ``--quality-rtol``) and
reports the surrogate's rank correlation against the grid's
full-fidelity values — the number that says the model orders candidates
like the simulator does.

Emits ``BENCH_surrogate_tune.json`` through :mod:`_emit`::

    PYTHONPATH=src python benchmarks/bench_surrogate_tune.py --scale 0.15
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path

from _emit import emit_json

from repro.apps import CONS, get_app
from repro.apps.common import canonicalize_variant
from repro.experiments import ResultStore
from repro.oracle import (SurrogateModel, TrainingLog, cost_fingerprint,
                          spearman)
from repro.sim.specs import DEFAULT_COST_MODEL, K20C
from repro.tuning import ConfigChoice, Tuner, TuningSpace, get_objective

#: bounded space (24 candidates) keeping three full tunes in bench time
SPACE = TuningSpace(strategies=(None, "warp", "grid"),
                    thresholds=(None, 8, 32, 128),
                    configs=(ConfigChoice(), ConfigChoice(kc_x=1)))


def _tune(app, scale, root, algorithm, oracle=None, training_log=None):
    tuner = Tuner(scale=scale, store=ResultStore(root), oracle=oracle,
                  training_log=training_log)
    t0 = time.perf_counter()
    result = tuner.tune(app, "cycles", algorithm=algorithm, space=SPACE)
    seconds = time.perf_counter() - t0
    return result, {
        "seconds": round(seconds, 2),
        "executed": result.stats.executed,
        "best_value": result.best.value,
        "best": result.config.describe()
        if hasattr(result.config, "describe") else str(result.best.candidate),
    }


def _rank_correlation(app, grid_result, log, scale):
    """Spearman between the model's predictions and the grid's true
    full-fidelity values, over the whole space."""
    objective = get_objective("cycles")
    rows = log.rows(app=app, device=K20C.name,
                    cost_fp=cost_fingerprint(DEFAULT_COST_MODEL),
                    verify=True)
    model = SurrogateModel.fit(rows, objective,
                               default_threshold=get_app(app).threshold)
    if model is None:
        return float("nan"), 0
    axes, truth = [], []
    for trial in grid_result.trials:
        cand = trial.candidate
        variant, strategy = canonicalize_variant(CONS, cand.strategy)
        axes.append((variant, strategy, cand.threshold,
                     cand.config_key(K20C)))
        truth.append(trial.value)
    predicted = model.predict_axes(axes, scale)
    return float(spearman(predicted, truth)), model.n_rows


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--app", default="sssp")
    ap.add_argument("--scale", type=float, default=0.15,
                    help="dataset scale (must exceed the 0.05 rung floor "
                         "or every rung is full fidelity)")
    ap.add_argument("--quality-rtol", type=float, default=0.05,
                    help="allowed relative gap between the surrogate "
                         "tune's winner and the grid winner")
    args = ap.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="bench-surrogate-") as tmp:
        tmp = Path(tmp)
        grid_result, grid = _tune(args.app, args.scale, tmp / "grid",
                                  "grid")
        warm_log = TrainingLog.for_store(ResultStore(tmp / "grid"))

        _, halving = _tune(args.app, args.scale, tmp / "halving", "halving")

        surr_result, surrogate = _tune(
            args.app, args.scale, tmp / "surrogate", "halving",
            oracle="surrogate", training_log=warm_log)

        rho, train_rows = _rank_correlation(args.app, grid_result, warm_log,
                                            args.scale)

    # the tuner's winner is always a full-fidelity simulated trial; hold
    # it to the exhaustive baseline
    gap = abs(surrogate["best_value"] - grid["best_value"]) / \
        max(grid["best_value"], 1e-9)
    if gap > args.quality_rtol:
        raise AssertionError(
            f"surrogate tune lost quality: {surrogate['best_value']} vs "
            f"grid {grid['best_value']} (gap {gap:.1%})")
    if surrogate["executed"] >= halving["executed"]:
        raise AssertionError(
            f"surrogate did not save simulations: {surrogate['executed']}"
            f" >= {halving['executed']}")

    for name, row in (("grid", grid), ("halving-sim", halving),
                      ("halving-surrogate", surrogate)):
        print(f"{name:<19} {row['seconds']:>7.2f}s "
              f"{row['executed']:>4} executed  best={row['best_value']}")
    print(f"quality gap vs grid: {gap:.2%}; "
          f"rank correlation (n={train_rows} rows): {rho:.3f}")

    path = emit_json("surrogate_tune", {
        "app": args.app,
        "scale": args.scale,
        "space_size": SPACE.size() if hasattr(SPACE, "size")
        else len(list(SPACE.candidates())),
        "grid": grid,
        "halving_sim": halving,
        "halving_surrogate": surrogate,
        "quality_gap": round(gap, 4),
        "rank_correlation": round(rho, 4),
        "train_rows": train_rows,
        "tune_speedup_vs_grid": round(
            grid["seconds"] / max(surrogate["seconds"], 1e-9), 1),
        "sims_saved_vs_grid": grid["executed"] - surrogate["executed"],
    })
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Backend bench: CPU-backend vs simulator wall-clock, per app/variant.

The NumPy/multiprocessing CPU backend exists for *cross-checking* — it
replays the simulator's canonical schedule without the timing model, so
its only performance question is how much interpreter overhead the
differential harness pays per run. This bench times both engines on the
same datasets, asserts their functional results still match element for
element (a bench that silently diverged would be timing two different
computations), and reports the cpu/sim wall-clock ratio.

A second section times :func:`repro.backends.run_jobs` fan-out: the same
batch of independent :class:`~repro.backends.CpuJob` programs executed
in-process vs across worker processes.

Emits ``BENCH_backends.json`` through :mod:`_emit`::

    PYTHONPATH=src python benchmarks/bench_backends.py --scale 0.1
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from _emit import emit_json

from repro.apps import BASIC, GRID, get_app
from repro.backends import CpuJob, run_jobs

#: the differential harness's hot pairs: the cheapest and the most
#: consolidation-heavy variant of two paper apps
CASES = [("sssp", BASIC), ("sssp", GRID), ("spmv", BASIC), ("spmv", GRID)]

_FANOUT_SRC = """
__global__ void scale_add(int* out, int n, int k) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) { out[i] = out[i] * k + i; }
}
"""


def time_pairs(scale: float) -> dict:
    rows = {}
    for key, variant in CASES:
        app = get_app(key)
        dataset = app.default_dataset(scale)
        t0 = time.perf_counter()
        sim = app.run(variant, dataset=dataset, verify=False)
        t1 = time.perf_counter()
        cpu = app.run(variant, dataset=dataset, verify=False, backend="cpu")
        t2 = time.perf_counter()
        if not np.array_equal(sim.result, cpu.result):
            raise AssertionError(f"cpu backend diverged on {key} [{variant}]")
        rows[f"{key}:{variant}"] = {
            "sim_s": round(t1 - t0, 4),
            "cpu_s": round(t2 - t1, 4),
            "cpu_over_sim": round((t2 - t1) / max(t1 - t0, 1e-9), 2),
        }
    return rows


def time_fanout(jobs: int, processes: int) -> dict:
    batch = [
        CpuJob(
            source=_FANOUT_SRC,
            arrays={"out": np.arange(4096, dtype=np.int32)},
            launches=[("scale_add", 16, 256, ("out", 4096, j + 1))],
        )
        for j in range(jobs)
    ]
    t0 = time.perf_counter()
    serial = run_jobs(batch, processes=1)
    t1 = time.perf_counter()
    fanned = run_jobs(batch, processes=processes)
    t2 = time.perf_counter()
    for s, f in zip(serial, fanned):
        if not np.array_equal(s["out"], f["out"]):
            raise AssertionError("run_jobs fan-out changed results")
    return {
        "jobs": jobs,
        "processes": processes,
        "serial_s": round(t1 - t0, 4),
        "parallel_s": round(t2 - t1, 4),
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--scale", type=float, default=0.1,
                    help="dataset scale for the app pairs (default 0.1)")
    ap.add_argument("--jobs", type=int, default=8,
                    help="batch size for the run_jobs fan-out section")
    ap.add_argument("--processes", type=int, default=2,
                    help="worker processes for the fan-out section")
    args = ap.parse_args(argv)

    pairs = time_pairs(args.scale)
    fanout = time_fanout(args.jobs, args.processes)

    print(f"{'case':24s} {'sim':>8s} {'cpu':>8s} {'cpu/sim':>8s}")
    for case, row in pairs.items():
        print(f"{case:24s} {row['sim_s']:7.3f}s {row['cpu_s']:7.3f}s "
              f"{row['cpu_over_sim']:7.2f}x")
    print(f"run_jobs x{fanout['jobs']}: serial {fanout['serial_s']:.3f}s, "
          f"{fanout['processes']} procs {fanout['parallel_s']:.3f}s")

    path = emit_json("backends", {
        "scale": args.scale,
        "pairs": pairs,
        "fanout": fanout,
    })
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

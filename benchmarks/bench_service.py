"""Service throughput bench: N concurrent clients, overlapping specs.

Boots a real :class:`~repro.service.ExperimentService` (unix socket,
fresh sharded store in a temp dir unless ``--cache-dir``), then drives
it twice with ``--clients`` threads, each submitting the same pool of
unique RunSpecs in a rotated order so requests overlap heavily:

* **cold** — empty store: unique specs execute exactly once, duplicate
  requests coalesce onto the in-flight runs;
* **warm** — same requests again: the service must execute **zero**
  simulations (asserted) and serve everything from the store.

Reports jobs/s for both phases plus the dedup/cache counters, and
emits ``BENCH_service.json`` through :mod:`_emit` for the CI artifact
trail::

    PYTHONPATH=src python benchmarks/bench_service.py --scale 0.1
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import threading
import time
from pathlib import Path

from _emit import emit_json

from repro.experiments import ResultStore, RunSpec
from repro.service import ExperimentService, ServiceClient

#: the overlapping request pool: a mix the figure harnesses also run,
#: so a warm store from `repro all` makes even the cold phase cheap
SPEC_POOL = [
    RunSpec("sssp", "basic-dp"),
    RunSpec("sssp", "grid-level"),
    RunSpec("spmv", "no-dp"),
    RunSpec("spmv", "grid-level"),
    RunSpec("gc", "basic-dp"),
    RunSpec("gc", "grid-level"),
]


def drive_clients(socket_path, clients: int, rounds: int) -> tuple[float, int]:
    """Each client thread submits the pool ``rounds`` times, rotated by
    its index; returns (wall seconds, total requests)."""
    barrier = threading.Barrier(clients)
    errors: list[BaseException] = []

    def worker(idx: int) -> None:
        try:
            with ServiceClient(socket_path=socket_path) as client:
                barrier.wait(timeout=60)
                for r in range(rounds):
                    for i in range(len(SPEC_POOL)):
                        spec = SPEC_POOL[(idx + i) % len(SPEC_POOL)]
                        client.submit_spec(spec)
        except BaseException as exc:  # noqa: BLE001 — surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(clients)]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0
    if errors:
        raise RuntimeError(f"{len(errors)} client(s) failed: {errors[0]}")
    return wall, clients * rounds * len(SPEC_POOL)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--clients", type=int, default=32)
    ap.add_argument("--rounds", type=int, default=1,
                    help="pool repetitions per client per phase")
    ap.add_argument("--scale", type=float, default=0.1)
    ap.add_argument("--jobs", type=int, default=2,
                    help="server-side worker processes per batch")
    ap.add_argument("--batch-window", type=float, default=0.05)
    ap.add_argument("--cache-dir", default=None,
                    help="store location (default: fresh temp dir = cold)")
    args = ap.parse_args(argv)

    workdir = Path(args.cache_dir or tempfile.mkdtemp(prefix="bench-svc-"))
    store = ResultStore(workdir)
    # a pre-warmed --cache-dir legitimately serves the "cold" phase from
    # disk; only a fresh store must execute every unique spec
    fresh_store = len(store) == 0
    svc = ExperimentService(scale=args.scale, store=store,
                            jobs=args.jobs, batch_window=args.batch_window)
    socket_path = workdir / "bench.sock"
    ready = threading.Event()
    server = threading.Thread(
        target=svc.run,
        kwargs=dict(socket_path=socket_path, ready=ready.set), daemon=True)
    server.start()
    if not ready.wait(30):
        print("error: service did not come up", file=sys.stderr)
        return 1

    cold_wall, cold_requests = drive_clients(socket_path, args.clients,
                                             args.rounds)
    executed_cold = svc.metrics.executed
    coalesced_cold = svc.metrics.coalesced

    warm_wall, warm_requests = drive_clients(socket_path, args.clients,
                                             args.rounds)
    executed_warm = svc.metrics.executed - executed_cold

    with ServiceClient(socket_path=socket_path) as client:
        status = client.status()
        client.shutdown()
    server.join(30)

    if fresh_store:
        assert executed_cold == len(SPEC_POOL), \
            f"cold phase executed {executed_cold}, want {len(SPEC_POOL)}"
    else:
        assert executed_cold <= len(SPEC_POOL), \
            f"cold phase executed {executed_cold} > pool size"
    assert executed_warm == 0, \
        f"warm phase executed {executed_warm} runs; want 0"

    m = status["metrics"]
    payload = {
        "clients": args.clients,
        "rounds": args.rounds,
        "scale": args.scale,
        "jobs": args.jobs,
        "batch_window_s": args.batch_window,
        "unique_specs": len(SPEC_POOL),
        "cold_requests": cold_requests,
        "cold_wall_s": round(cold_wall, 3),
        "cold_jobs_per_s": round(cold_requests / cold_wall, 1),
        "cold_executed": executed_cold,
        "cold_coalesced": coalesced_cold,
        "warm_requests": warm_requests,
        "warm_wall_s": round(warm_wall, 3),
        "warm_jobs_per_s": round(warm_requests / warm_wall, 1),
        "warm_executed": executed_warm,
        "dedup_rate": m["dedup_rate"],
        "cache_hit_rate": m["cache_hit_rate"],
        "batches": m["batches"],
        "max_batch": m["max_batch"],
    }
    out = emit_json("service", payload)
    print(f"{args.clients} clients x {args.rounds}x{len(SPEC_POOL)} specs "
          f"(scale {args.scale}, {len(SPEC_POOL)} unique)")
    print(f"  cold : {payload['cold_jobs_per_s']:8.1f} jobs/s "
          f"({cold_requests} requests, {executed_cold} executed, "
          f"{cold_wall:.2f}s)")
    print(f"  warm : {payload['warm_jobs_per_s']:8.1f} jobs/s "
          f"({warm_requests} requests, 0 executed, {warm_wall:.2f}s)")
    print(f"  dedup rate {100 * m['dedup_rate']:.1f}%  "
          f"cache-hit rate {100 * m['cache_hit_rate']:.1f}%  "
          f"batches {m['batches']} (largest {m['max_batch']})")
    print(f"  -> {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

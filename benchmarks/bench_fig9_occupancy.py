"""Fig. 9 bench: achieved SMX occupancy."""

from conftest import emit, emit_table

from repro.experiments import fig9_occupancy


def test_fig9_occupancy(benchmark, runner):
    table = benchmark.pedantic(
        lambda: fig9_occupancy.compute(runner), rounds=1, iterations=1,
    )
    claims = fig9_occupancy.claims(runner)
    emit("Figure 9 — achieved SMX occupancy",
         table.render() + "\n" + "\n".join(c.render() for c in claims))
    emit_table("fig9_occupancy", table, benchmark)
    assert len(table.rows) == 8

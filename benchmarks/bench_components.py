"""Library micro-benchmarks: the compiler and simulator themselves.

These time the infrastructure rather than regenerate paper figures —
useful for tracking regressions in the hot paths (parser, transform,
functional engine, timing scheduler).
"""

import numpy as np

from conftest import bench_seconds

from repro.apps import get_app
from repro.compiler import consolidate_source
from repro.frontend.parser import parse
from repro.frontend.typecheck import check_module
from repro.frontend.unparser import unparse
from repro.sim.device import Device

#: per-test mean seconds, emitted as BENCH_components.json by the last
#: test in this module
_TIMES: dict = {}


def _record(name, benchmark):
    wall = bench_seconds(benchmark)
    if wall is not None:
        _TIMES[name] = wall


def test_parse_and_check(benchmark):
    src = get_app("sssp").annotated_source()
    info = benchmark(lambda: check_module(parse(src)))
    _record("parse_and_check_s", benchmark)
    assert info.kernel_names()


def test_unparse(benchmark):
    module = parse(get_app("sssp").annotated_source())
    text = benchmark(lambda: unparse(module))
    _record("unparse_s", benchmark)
    assert "__global__" in text


def test_consolidation_transform(benchmark):
    src = get_app("sssp").annotated_source()
    result = benchmark(lambda: consolidate_source(src, granularity="grid"))
    _record("consolidation_transform_s", benchmark)
    assert result.report.granularity == "grid"


def test_functional_engine_throughput(benchmark):
    """Events/second of the SIMT engine on a memory-heavy kernel."""
    src = """
    __global__ void stream(int* a, int* b, int n) {
        int t = blockIdx.x * blockDim.x + threadIdx.x;
        for (int i = t; i < n; i += gridDim.x * blockDim.x) {
            b[i] = a[i] * 2 + 1;
        }
    }
    """
    n = 16384

    def run():
        dev = Device()
        prog = dev.load(src)
        a = dev.from_numpy("a", np.arange(n, dtype=np.int32))
        b = dev.from_numpy("b", np.zeros(n, dtype=np.int32))
        prog.launch("stream", 32, 256, a, b, n)
        return dev.synchronize()

    metrics = benchmark.pedantic(run, rounds=3, iterations=1)
    _record("functional_engine_s", benchmark)
    assert metrics.dram_transactions > 0


def test_timing_scheduler_throughput(benchmark):
    """Scheduler events/second with thousands of tiny kernels (the
    basic-dp shape that stresses the pending pool)."""
    from repro.sim.engine import BlockTrace, KernelInstance, LaunchRecord
    from repro.sim.specs import CostModel, K20C
    from repro.sim.timing import DeviceScheduler

    def build():
        parent = KernelInstance(uid=1, name="p", grid=1, block_dim=128,
                                args=(), depth=0)
        trace = BlockTrace(block_idx=0, num_threads=128, num_warps=4)
        trace.segments = [100_000]
        parent.blocks.append(trace)
        for i in range(3000):
            child = KernelInstance(uid=2 + i, name="c", grid=1, block_dim=32,
                                   args=(), depth=1, parent_uid=1,
                                   from_device=True)
            ct = BlockTrace(block_idx=0, num_threads=32, num_warps=1)
            ct.segments = [50]
            child.blocks.append(ct)
            parent.children.append(child)
            trace.launches.append(LaunchRecord(0, i * 30, child))
        return parent

    def run():
        parent = build()
        return DeviceScheduler(K20C, CostModel()).run([parent])

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    _record("timing_scheduler_s", benchmark)
    from _emit import emit_json

    emit_json("components", dict(_TIMES))
    assert result.max_pending > 0

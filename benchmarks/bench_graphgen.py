"""Generator micro-benchmarks: the kron_like hot path, before/after.

Workload sweeps (``repro sensitivity``, per-workload tuning) materialize
many graphs per invocation, which made the two per-node Python loops in
``kron_like`` — the min-degree ring-edge floor and the >1023-degree hub
cap — a real hot path. Both are now NumPy-vectorized; this bench keeps
the original loop implementation around as ``_kron_like_loops`` and
checks the vectorized generator is array-identical while timing both,
so the speedup (and the equivalence) stays measurable.

Run: ``PYTHONPATH=src python -m pytest benchmarks/bench_graphgen.py``.
"""

import numpy as np

from conftest import bench_seconds

from repro.data.graphgen import kron_like
from repro.data.structures import Graph
from repro.workloads import materialize

#: large enough that the floor/cap stages dominate; small enough for CI
BENCH_SCALE = 8.0

#: per-test mean seconds, gathered across this module's benchmarks and
#: emitted as one BENCH_graphgen.json envelope by the last test
_TIMES: dict = {}


def _record(name, benchmark):
    wall = bench_seconds(benchmark)
    if wall is not None:
        _TIMES[name] = wall


def _kron_like_loops(scale: float = 1.0, seed: int = 2) -> Graph:
    """The pre-vectorization kron_like, loops and all (reference)."""
    rng = np.random.default_rng(seed)
    levels = max(6, int(round(10 + np.log2(max(scale, 1e-6)))))
    n = 1 << levels
    m = 8 * n
    a, b, c = 0.57, 0.19, 0.19
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    for lvl in range(levels):
        r = rng.random(m)
        right = r >= a + b
        down = ((r >= a) & (r < a + b)) | (r >= a + b + c)
        src = src * 2 + down.astype(np.int64)
        dst = dst * 2 + right.astype(np.int64)
    u = np.concatenate([src, dst])
    v = np.concatenate([dst, src])
    keep = u != v
    u, v = u[keep], v[keep]
    order = np.lexsort((v, u))
    u, v = u[order], v[order]
    dedup = np.ones(len(u), dtype=bool)
    dedup[1:] = (u[1:] != u[:-1]) | (v[1:] != v[:-1])
    u, v = u[dedup], v[dedup]
    deg = np.bincount(u, minlength=n)
    extra_u = [np.zeros(0, dtype=np.int64)]
    extra_v = [np.zeros(0, dtype=np.int64)]
    for node in np.nonzero(deg < 8)[0]:  # the former per-node loop
        need = 8 - deg[node]
        targets = (node + 1 + np.arange(need)) % n
        extra_u.append(np.full(need, node))
        extra_v.append(targets)
        extra_u.append(targets)
        extra_v.append(np.full(need, node))
    u = np.concatenate([u] + extra_u)
    v = np.concatenate([v] + extra_v)
    order = np.lexsort((v, u))
    u, v = u[order], v[order]
    dedup = np.ones(len(u), dtype=bool)
    dedup[1:] = (u[1:] != u[:-1]) | (v[1:] != v[:-1])
    u, v = u[dedup], v[dedup]
    max_deg = 1023
    deg = np.bincount(u, minlength=n)
    if deg.max() > max_deg:
        keep = np.ones(len(u), dtype=bool)
        start = np.zeros(n + 1, dtype=np.int64)
        start[1:] = np.cumsum(deg)
        for node in np.nonzero(deg > max_deg)[0]:  # former hub-cap loop
            keep[start[node] + max_deg:start[node + 1]] = False
        fwd_key = u * n + v
        rev_key = v * n + u
        rev_pos = np.searchsorted(fwd_key, rev_key)
        keep &= keep[rev_pos]
        u, v = u[keep], v[keep]
    row_ptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(row_ptr, u + 1, 1)
    row_ptr = np.cumsum(row_ptr)
    weights = rng.integers(1, 11, size=len(u)).astype(np.int32)
    g = Graph(f"kron_like(x{scale:g})", row_ptr.astype(np.int64),
              v.astype(np.int32), weights)
    g.validate()
    return g


def test_kron_like_vectorized(benchmark):
    g = benchmark(lambda: kron_like(BENCH_SCALE))
    _record("kron_like_vectorized_s", benchmark)
    assert g.degrees.min() >= 1 and g.degrees.max() <= 1023


def test_kron_like_loop_reference(benchmark):
    g = benchmark(lambda: _kron_like_loops(BENCH_SCALE))
    _record("kron_like_loops_s", benchmark)
    assert g.degrees.max() <= 1023


def test_vectorized_is_array_identical_to_loops():
    for scale in (0.5, 2.0, BENCH_SCALE):
        fast, slow = kron_like(scale), _kron_like_loops(scale)
        assert np.array_equal(fast.row_ptr, slow.row_ptr)
        assert np.array_equal(fast.col_idx, slow.col_idx)
        assert np.array_equal(fast.weights, slow.weights)


def test_workload_materialization_sweep(benchmark):
    """Time one full sensitivity-style dataset sweep: every graph
    workload family materialized at scale 1."""
    names = ("citeseer", "kron", "uniform", "road", "star", "chain",
             "bimodal")

    def sweep():
        return [materialize(name, 1.0) for name in names]

    graphs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    _record("materialization_sweep_s", benchmark)
    from _emit import emit_json

    payload = {"bench_scale": BENCH_SCALE, **_TIMES}
    fast, slow = (_TIMES.get("kron_like_vectorized_s"),
                  _TIMES.get("kron_like_loops_s"))
    if fast and slow:
        payload["vectorization_speedup"] = slow / fast
    emit_json("graphgen", payload)
    assert all(g.num_edges > 0 for g in graphs)

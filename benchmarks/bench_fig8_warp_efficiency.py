"""Fig. 8 bench: warp execution efficiency + child-launch counts."""

from conftest import emit, emit_table

from repro.experiments import fig8_warp_efficiency


def test_fig8_warp_efficiency(benchmark, runner):
    table = benchmark.pedantic(
        lambda: fig8_warp_efficiency.compute(runner), rounds=1, iterations=1,
    )
    claims = fig8_warp_efficiency.claims(runner)
    emit("Figure 8 — warp execution efficiency",
         table.render() + "\n" + "\n".join(c.render() for c in claims))
    emit_table("fig8_warp_efficiency", table, benchmark)
    assert len(table.rows) == 8

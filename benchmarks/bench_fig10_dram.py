"""Fig. 10 bench: DRAM transactions relative to basic-dp."""

from conftest import emit, emit_table

from repro.experiments import fig10_dram


def test_fig10_dram_transactions(benchmark, runner):
    table = benchmark.pedantic(
        lambda: fig10_dram.compute(runner), rounds=1, iterations=1,
    )
    claims = fig10_dram.claims(table)
    emit("Figure 10 — DRAM transactions ratio",
         table.render() + "\n" + "\n".join(c.render() for c in claims))
    emit_table("fig10_dram", table, benchmark)
    geo = table.rows[-1]
    # all granularities reduce traffic on (geometric) average
    assert all(v < 1.0 for v in geo[1:])

"""Tuning bench: tuned configurations vs the paper's fixed choices.

Runs the autotuner (successive halving over the full joint space) for
every benchmark app and regenerates the tuned-vs-paper comparison table.
Shares the session result store (``REPRO_BENCH_CACHE``) with the figure
benches, so candidate evaluations that coincide with figure runs — the
paper-default configurations in particular — come from cache.
"""

import os

from conftest import SCALE, emit, emit_table

from repro.experiments import ResultStore, tuned_vs_paper
from repro.apps import all_apps
from repro.tuning import Tuner

CACHE = os.environ.get("REPRO_BENCH_CACHE", "")
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "0"))


def test_tuned_vs_paper(benchmark):
    tuner = Tuner(scale=min(SCALE, 0.5),
                  store=ResultStore(CACHE) if CACHE else None,
                  jobs=max(JOBS, 1))
    table = benchmark.pedantic(
        lambda: tuned_vs_paper.compute(tuner, algorithm="halving"),
        rounds=1, iterations=1,
    )
    emit("Tuned configuration vs paper defaults", table.render())
    emit_table("tuned", table, benchmark)
    assert len(table.rows) == len(all_apps()) + 1  # + geomean row
    gains = table.column("gain (x)")[:-1]
    assert all(g >= 1.0 for g in gains)

"""Shared emitter for machine-readable benchmark results.

Benches call :func:`emit_json` with a flat payload of measured numbers;
the helper wraps it in a stable envelope (bench name, package version,
schema format) and writes ``BENCH_<name>.json`` atomically (temp file +
rename, the same discipline as the result store), so a CI artifact
collector never uploads a torn file and perf-trajectory tooling can diff
files across commits. Output directory: ``$REPRO_BENCH_OUT`` or the
current directory.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

#: bump when the envelope shape changes
EMIT_FORMAT = 1

#: environment variable overriding the output directory
BENCH_OUT_ENV = "REPRO_BENCH_OUT"


def emit_json(name: str, payload: dict, directory=None) -> Path:
    """Write ``BENCH_<name>.json`` atomically; returns the path."""
    root = Path(directory if directory is not None
                else os.environ.get(BENCH_OUT_ENV, "."))
    root.mkdir(parents=True, exist_ok=True)
    try:
        from repro import __version__
    except ImportError:  # bench run without the package on sys.path
        __version__ = "unknown"
    envelope = {
        "format": EMIT_FORMAT,
        "bench": name,
        "version": __version__,
        "payload": payload,
    }
    path = root / f"BENCH_{name}.json"
    fd, tmp = tempfile.mkstemp(dir=root, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(envelope, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path

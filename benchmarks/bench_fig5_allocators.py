"""Fig. 5 bench: consolidation-buffer allocators on SSSP.

Regenerates the paper's allocator comparison and times the full harness.
"""

from conftest import emit, emit_table

from repro.experiments import fig5_allocators


def test_fig5_allocators(benchmark, runner):
    table = benchmark.pedantic(
        lambda: fig5_allocators.compute(runner), rounds=1, iterations=1,
    )
    claims = fig5_allocators.claims(table, runner)
    emit("Figure 5 — buffer allocators (SSSP)",
         table.render() + "\n" + "\n".join(c.render() for c in claims))
    emit_table("fig5_allocators", table, benchmark)
    assert len(table.rows) == 3

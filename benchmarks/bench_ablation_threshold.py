"""Ablation bench: the work-delegation threshold of the Fig. 1 template."""

from conftest import SCALE, emit, emit_table

from repro.experiments import ablation_threshold


def test_delegation_threshold_sweep(benchmark):
    table = benchmark.pedantic(
        lambda: ablation_threshold.compute(scale=min(SCALE, 0.5)),
        rounds=1, iterations=1,
    )
    emit("Ablation — delegation threshold (SSSP, grid-level)", table.render())
    emit_table("ablation_threshold", table, benchmark)
    assert len(table.rows) == len(ablation_threshold.THRESHOLDS)

"""Fig. 7 bench: overall speedup of every variant over basic-dp."""

from conftest import emit, emit_table

from repro.experiments import fig7_overall


def test_fig7_overall_speedup(benchmark, runner):
    table = benchmark.pedantic(
        lambda: fig7_overall.compute(runner), rounds=1, iterations=1,
    )
    claims = fig7_overall.claims(table)
    emit("Figure 7 — overall speedup over basic-dp",
         table.render() + "\n" + "\n".join(c.render() for c in claims))
    emit_table("fig7_overall", table, benchmark)
    # 7 apps + geomean row
    assert len(table.rows) == 8
    # headline shape: every variant beats basic-dp on every app
    for row in table.rows[:-1]:
        assert all(v > 1.0 for v in row[1:])

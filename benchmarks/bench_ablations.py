"""Ablation benches for the cost-model design choices DESIGN.md §5 calls
out: which overhead term is responsible for how much of basic-dp's pain.

For each ablated term, basic-dp SSSP is re-simulated with that term zeroed;
the printed table shows the speedup basic-dp *would* get — i.e. the term's
share of the total overhead. The paper's qualitative story (§III.B) is
that launch serialization dominates, with buffering and synchronization
overheads second-order; the ablation makes that checkable here.
"""

from conftest import SCALE, emit, emit_table

from repro.apps import get_app
from repro.experiments.reporting import Table
from repro.sim.specs import DEFAULT_COST_MODEL

ABLATIONS = {
    "launch latency": {"launch_latency_cycles": 0},
    "dispatch serialization": {"dispatch_serialization_cycles": 0},
    "launch uops (parent-side)": {"launch_uops": 0},
    "virtual-pool penalty": {"virtual_pool_penalty_cycles": 0,
                             "virtual_pool_transactions": 0},
    "swap at device-sync": {"swap_cycles": 0, "swap_transactions": 0},
    "all DP overheads": {"launch_latency_cycles": 0,
                         "dispatch_serialization_cycles": 0,
                         "launch_uops": 0,
                         "virtual_pool_penalty_cycles": 0,
                         "swap_cycles": 0},
}


def test_cost_model_ablations(benchmark):
    app = get_app("sssp")
    dataset = app.default_dataset(SCALE)

    def run_all():
        base = app.run("basic-dp", dataset=dataset).metrics.cycles
        rows = []
        for name, overrides in ABLATIONS.items():
            cost = DEFAULT_COST_MODEL.scaled(**overrides)
            cycles = app.run("basic-dp", dataset=dataset,
                             cost=cost).metrics.cycles
            rows.append((name, base / cycles))
        return base, rows

    base, rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = Table(
        title="Ablation — basic-dp SSSP speedup when zeroing one overhead",
        columns=["ablated term", "speedup if removed"],
    )
    for name, speedup in rows:
        table.add(name, speedup)
    emit("Cost-model ablation (basic-dp SSSP)", table.render())
    emit_table("ablations", table, benchmark,
               extra={"baseline_cycles": base})
    shares = dict(rows)
    # the launch path must dominate, as §III.B argues
    assert shares["all DP overheads"] > 2.0
    assert (shares["launch latency"] * shares["dispatch serialization"]
            > shares["swap at device-sync"])

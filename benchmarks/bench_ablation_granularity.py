"""Ablation bench: the consolidation-strategy (granularity) axis.

At full scale the per-app table makes the trade-off from DESIGN.md §10
checkable: grid-level wins wherever launch overhead dominates, while the
launch/buffer/stall columns show *why* — each strategy's aggregation
factor against its barrier and allocator price.
"""

from conftest import emit, emit_table, runner  # noqa: F401

from repro.experiments import ablation_granularity


def test_granularity_sweep(benchmark, runner):  # noqa: F811
    table = benchmark.pedantic(
        lambda: ablation_granularity.compute(runner),
        rounds=1, iterations=1,
    )
    emit("Ablation — consolidation strategy per app", table.render())
    emit_table("ablation_granularity", table, benchmark)
    assert len(table.rows) == 8  # 7 apps + geomean
    for claim in ablation_granularity.claims(table):
        assert claim.holds, claim.render()

"""Input-sensitivity bench: strategy x workload per app, full scale.

Regenerates the ``repro sensitivity`` table against the session runner
and asserts its headline: on at least one workload the paper's fixed
granularity is not the winner, and for at least one app the winner flips
with the input (the Olabi et al. observation the subsystem exists to
measure).
"""

from conftest import emit, emit_table, runner  # noqa: F401

from repro.experiments import input_sensitivity


def test_input_sensitivity_sweep(benchmark, runner):  # noqa: F811
    table = benchmark.pedantic(
        lambda: input_sensitivity.compute(runner),
        rounds=1, iterations=1,
    )
    claims = input_sensitivity.claims(table)
    emit("Input sensitivity — strategy x workload per app",
         table.render() + "\n" + "\n".join(c.render() for c in claims))
    emit_table("input_sensitivity", table, benchmark)
    # every app sweeps its default plus at least one adversarial input
    apps = {row[0] for row in table.rows}
    assert len(apps) == 7
    assert len(table.rows) > len(apps)
    for claim in claims:
        assert claim.holds, claim.render()

"""Shared state for the benchmark harness.

One session-scoped :class:`ExperimentRunner` memoizes application runs, so
the Fig. 7/8/9/10 benches profile the same executions — exactly how the
paper gathered its numbers. Scale with ``REPRO_BENCH_SCALE`` (default 1.0,
matching EXPERIMENTS.md; ~10 minutes total. Use 0.5 for a quick pass).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import ExperimentRunner

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    return ExperimentRunner(scale=SCALE)


def emit(title: str, text: str) -> None:
    """Print a regenerated figure underneath the benchmark output."""
    bar = "=" * 72
    print(f"\n{bar}\n{title} (dataset scale x{SCALE})\n{bar}\n{text}\n")

"""Shared state for the benchmark harness.

One session-scoped :class:`ExperimentRunner` memoizes application runs, so
the Fig. 7/8/9/10 benches profile the same executions — exactly how the
paper gathered its numbers (see EXPERIMENTS.md). Environment knobs:

* ``REPRO_BENCH_SCALE`` — dataset scale (default 1.0, matching
  EXPERIMENTS.md; ~10 minutes total. Use 0.5 for a quick pass);
* ``REPRO_BENCH_JOBS`` — prefetch the union of every figure's work plan
  across N worker processes before the benches start (default 0: each
  bench executes its own runs serially, preserving per-bench timings);
* ``REPRO_BENCH_CACHE`` — set to a directory to persist runs in an
  on-disk result store, making repeated bench sessions warm-start.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import ExperimentRunner, FIGURES, ResultStore, figure_plan

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "0"))
CACHE = os.environ.get("REPRO_BENCH_CACHE", "")


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    store = ResultStore(CACHE) if CACHE else None
    runner = ExperimentRunner(scale=SCALE, store=store)
    if JOBS > 1:
        runner.prefetch(figure_plan(FIGURES, runner), jobs=JOBS)
    return runner


def emit(title: str, text: str) -> None:
    """Print a regenerated figure underneath the benchmark output."""
    bar = "=" * 72
    print(f"\n{bar}\n{title} (dataset scale x{SCALE})\n{bar}\n{text}\n")


def bench_seconds(benchmark):
    """Mean per-round seconds from pytest-benchmark, once it has run."""
    try:
        return float(benchmark.stats.stats.mean)
    except AttributeError:
        return None


def emit_table(name: str, table, benchmark=None, extra: dict = None):
    """Machine-readable companion to :func:`emit`: flatten a reporting
    Table's numeric cells into the ``BENCH_<name>.json`` envelope
    (:mod:`_emit`), which ``repro perf ingest`` records in the ledger.

    Row labels come from the non-numeric leading cells (figure tables
    key rows by app/dataset/strategy), numeric cells keep their column
    header as the metric name.
    """
    from _emit import emit_json

    cells: dict = {}
    for row in table.rows:
        label_parts = []
        values = {}
        for col, value in zip(table.columns, row):
            if isinstance(value, (int, float)) and not isinstance(value,
                                                                  bool):
                values[str(col)] = value
            else:
                label_parts.append(str(value))
        label = " / ".join(label_parts) if label_parts else str(row[0])
        cells.setdefault(label, {}).update(values)
    payload = {"scale": SCALE, "cells": cells}
    wall = bench_seconds(benchmark) if benchmark is not None else None
    if wall is not None:
        payload["wall_s"] = wall
    if extra:
        payload.update(extra)
    return emit_json(name, payload)
